#include "enkf/senkf.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "enkf/faulty_store.hpp"
#include "enkf/patch_wire.hpp"
#include "parcomm/runtime.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"
#include "telemetry/phase.hpp"

namespace senkf::enkf {

namespace {

constexpr int kBlockTag = 1;
constexpr int kResultTag = 2;
/// I/O-group control channel (straggler re-issue protocol); never touches
/// computation ranks, so wildcards on it cannot steal result messages.
constexpr int kIoCtrlTag = 3;

/// Payload discriminators on kBlockTag (first u64 of every message).
/// A kKindBlock message is a framed multi-block batch:
///   {kKindBlock, layer, block…} where block = {member, rect, count,
///   doubles} — the pack_patch framing per block, read until the payload
///   is exhausted.  Every field is 8 bytes, so each block body stays
///   8-byte aligned and receivers consume it as a PatchView in place.
constexpr std::uint64_t kKindBlock = 0;
constexpr std::uint64_t kKindDead = 1;
/// The sending rank is unwinding; receivers must stop waiting for stage
/// data and unwind too (only sent when drop_unreadable_members is off).
constexpr std::uint64_t kKindAbort = 2;

/// Payload discriminators on kIoCtrlTag.
constexpr std::uint64_t kCtrlReissue = 0;
constexpr std::uint64_t kCtrlAck = 1;
constexpr std::uint64_t kCtrlDone = 2;

/// The telemetry the SenkfStats facade is derived from.  Counters are
/// process-wide and cumulative; senkf() reports per-run deltas, which
/// assumes runs do not overlap in one process (they never do — each run
/// owns the whole virtual cluster).
struct PhaseCounters {
  telemetry::Counter& io_read_ns;
  telemetry::Counter& io_send_ns;
  telemetry::Counter& comp_wait_ns;
  telemetry::Counter& comp_update_ns;
  telemetry::Counter& messages;
  telemetry::Counter& read_retries;
  telemetry::Counter& bars_reissued;
  telemetry::Counter& duplicate_blocks;
  telemetry::Counter& members_dropped;

  static PhaseCounters& get() {
    auto& registry = telemetry::Registry::global();
    static PhaseCounters counters{
        registry.counter("senkf.io_read_ns"),
        registry.counter("senkf.io_send_ns"),
        registry.counter("senkf.comp_wait_ns"),
        registry.counter("senkf.comp_update_ns"),
        registry.counter("senkf.messages"),
        registry.counter("senkf.read.retries"),
        registry.counter("senkf.read.reissued"),
        registry.counter("senkf.read.duplicate_blocks"),
        registry.counter("senkf.member.dropped"),
    };
    return counters;
  }

  struct Values {
    std::uint64_t io_read_ns = 0;
    std::uint64_t io_send_ns = 0;
    std::uint64_t comp_wait_ns = 0;
    std::uint64_t comp_update_ns = 0;
    std::uint64_t messages = 0;
    std::uint64_t read_retries = 0;
    std::uint64_t bars_reissued = 0;
  };

  Values values() const {
    return Values{io_read_ns.value(),   io_send_ns.value(),
                  comp_wait_ns.value(), comp_update_ns.value(),
                  messages.value(),     read_retries.value(),
                  bars_reissued.value()};
  }
};

SenkfStats stats_between(const PhaseCounters::Values& before,
                         const PhaseCounters::Values& after) {
  SenkfStats stats;
  stats.io_read_seconds =
      static_cast<double>(after.io_read_ns - before.io_read_ns) / 1e9;
  stats.io_send_seconds =
      static_cast<double>(after.io_send_ns - before.io_send_ns) / 1e9;
  stats.comp_wait_seconds =
      static_cast<double>(after.comp_wait_ns - before.comp_wait_ns) / 1e9;
  stats.comp_update_seconds =
      static_cast<double>(after.comp_update_ns - before.comp_update_ns) / 1e9;
  stats.messages = after.messages - before.messages;
  stats.read_retries = after.read_retries - before.read_retries;
  stats.bars_reissued = after.bars_reissued - before.bars_reissued;
  return stats;
}

/// Stage-indexed buffers filled by the helper thread and drained by the
/// main thread (the Fig. 8 handshake), extended with degraded-mode
/// accounting: a member is *accounted* for a stage once its block arrived
/// or the member was declared dead, and a stage completes when every
/// member is accounted — so a dead file shrinks the ensemble instead of
/// deadlocking the pipeline.  Duplicate blocks (a straggler whose bar was
/// re-issued can race its replacement) are counted and dropped, never an
/// error.
class StageBuffers {
 public:
  StageBuffers(Index layers, Index members)
      : layers_(layers),
        members_(members),
        patches_(layers * members),
        accounted_(layers, 0),
        dead_(members, 0) {}

  /// Helper thread: deposits member k's block for `stage`.  The view
  /// aliases an incoming payload; pair every batch of deposits with one
  /// retain() of the payload handle so the bytes outlive the views.
  void deposit(Index stage, Index member, grid::PatchView patch) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = patches_[stage * members_ + member];
    if (slot.has_value() || dead_[member] != 0) {
      PhaseCounters::get().duplicate_blocks.add(1);
      return;
    }
    slot = patch;
    if (++accounted_[stage] == members_) cv_.notify_all();
  }

  /// Keeps a message payload alive for as long as the buffers (and hence
  /// every deposited view into it) live.
  void retain(parcomm::SharedPayload payload) {
    std::lock_guard<std::mutex> lock(mutex_);
    owners_.push_back(std::move(payload));
  }

  /// Helper thread: member k's file is permanently unreadable — account
  /// it as missing in every stage.  Idempotent (several I/O readers can
  /// discover the same dead file).
  void mark_dead(Index member) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dead_[member] != 0) return;
    dead_[member] = 1;
    for (Index stage = 0; stage < layers_; ++stage) {
      if (!patches_[stage * members_ + member].has_value()) {
        if (++accounted_[stage] == members_) cv_.notify_all();
      }
    }
  }

  /// True once every stage has every member accounted (or the run was
  /// aborted) — the helper thread's termination condition.
  bool complete() const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (aborted_) return true;
    for (Index stage = 0; stage < layers_; ++stage) {
      if (accounted_[stage] != members_) return false;
    }
    return true;
  }

  /// Wakes everyone and makes take_stage throw: called when the helper
  /// thread dies or a peer rank announced it is unwinding, so the main
  /// thread never blocks on stage data that can no longer arrive.
  void abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    cv_.notify_all();
  }

  /// One completed stage: the surviving members' blocks in member order
  /// (views into retained payloads, valid while the StageBuffers live),
  /// plus which members they are (feeds the Yˢ column selection).
  struct Stage {
    std::vector<grid::PatchView> patches;
    std::vector<Index> live;
  };

  /// Main thread: blocks until every member is accounted for `stage`,
  /// then hands over the surviving blocks.
  Stage take_stage(Index stage) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return aborted_ || accounted_[stage] == members_; });
    if (aborted_) {
      throw ProtocolError("senkf: run aborted before stage data completed");
    }
    Stage out;
    out.patches.reserve(members_);
    out.live.reserve(members_);
    for (Index k = 0; k < members_; ++k) {
      if (dead_[k] != 0) continue;
      const auto& slot = patches_[stage * members_ + k];
      SENKF_REQUIRE(slot.has_value(), "StageBuffers: live member missing");
      out.patches.push_back(*slot);
      out.live.push_back(k);
    }
    return out;
  }

  /// Sorted dead members (stable once every stage completed).
  std::vector<Index> dead_members() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Index> out;
    for (Index k = 0; k < members_; ++k) {
      if (dead_[k] != 0) out.push_back(k);
    }
    return out;
  }

 private:
  Index layers_;
  Index members_;
  std::vector<std::optional<grid::PatchView>> patches_;
  std::vector<parcomm::SharedPayload> owners_;
  std::vector<Index> accounted_;
  std::vector<std::uint8_t> dead_;
  bool aborted_ = false;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
};

struct RankLayout {
  explicit RankLayout(const SenkfConfig& config) : config_(config) {}

  bool is_io(int rank) const {
    return rank >= static_cast<int>(config_.computation_ranks());
  }
  int comp_rank(Index i, Index j) const {
    return static_cast<int>(j * config_.n_sdx + i);
  }
  Index comp_i(int rank) const { return static_cast<Index>(rank) % config_.n_sdx; }
  Index comp_j(int rank) const { return static_cast<Index>(rank) / config_.n_sdx; }
  Index io_group(int rank) const {
    return (static_cast<Index>(rank) - config_.computation_ranks()) /
           config_.n_sdy;
  }
  Index io_slot(int rank) const {
    return (static_cast<Index>(rank) - config_.computation_ranks()) %
           config_.n_sdy;
  }
  int io_rank(Index group, Index slot) const {
    return static_cast<int>(config_.computation_ranks() + group * config_.n_sdy +
                            slot);
  }

  const SenkfConfig& config_;
};

/// The injector behind `store`, when reads can actually fail.
const pfs::FaultInjector* injector_of(const EnsembleStore& store) {
  const auto* faulty = dynamic_cast<const FaultyEnsembleStore*>(&store);
  return faulty != nullptr ? &faulty->injector() : nullptr;
}

/// Accumulates one layer's blocks per destination computation rank and
/// sends each destination a single coalesced message (the kKindBlock
/// batch framing).  Blocks are packed straight from the bar's rows —
/// no intermediate `bar.extract(block)` Patch — so each block's body is
/// copied exactly once between the file read and the analysis.
/// Coalescing the member loop this way cuts an io rank's per-layer
/// message count from members_per_group × n_sdx to n_sdx without
/// delaying any stage: take_stage waits for every member anyway.
class BlockBatch {
 public:
  BlockBatch(const RankLayout& layout,
             const grid::Decomposition& decomposition,
             const SenkfConfig& config, Index l, Index slot,
             Index expected_members)
      : layout_(layout), config_(config), l_(l), slot_(slot) {
    blocks_.reserve(config.n_sdx);
    packers_.resize(config.n_sdx);
    for (Index i = 0; i < config.n_sdx; ++i) {
      blocks_.push_back(decomposition.layer_expansion(
          grid::SubdomainId{i, slot}, l, config.layers));
      packers_[i].reserve(2 * sizeof(std::uint64_t) +
                          expected_members * (sizeof(std::uint64_t) +
                                              packed_patch_size(blocks_[i])));
      packers_[i].put<std::uint64_t>(kKindBlock);
      packers_[i].put<std::uint64_t>(l);
    }
  }

  /// Appends member's blocks (cut from its bar) to every destination.
  void add(Index member, const grid::PatchView& bar) {
    for (Index i = 0; i < config_.n_sdx; ++i) {
      packers_[i].put<std::uint64_t>(member);
      pack_patch_block(packers_[i], bar, blocks_[i]);
    }
    ++members_added_;
  }

  /// Sends the accumulated batches (one message per destination) and
  /// resets.  A batch with no members sends nothing.
  void flush(parcomm::Communicator& world, PhaseCounters& phases) {
    if (members_added_ == 0) return;
    telemetry::CountedSpan send_span(telemetry::Category::kSend,
                                     "block_scatter", phases.io_send_ns,
                                     static_cast<std::int32_t>(l_));
    for (Index i = 0; i < config_.n_sdx; ++i) {
      world.send(layout_.comp_rank(i, slot_), kBlockTag, packers_[i].take());
    }
    members_added_ = 0;
  }

 private:
  const RankLayout& layout_;
  const SenkfConfig& config_;
  Index l_;
  Index slot_;
  std::vector<grid::Rect> blocks_;
  std::vector<parcomm::Packer> packers_;
  Index members_added_ = 0;
};

/// Cuts `bar` (the stage-l expanded bar of `member` for latitude row
/// `slot`) into per-sub-domain blocks and sends them to the row's
/// computation ranks — a single-member batch (the straggler re-issue
/// path; the main schedule coalesces whole layers).
void scatter_bar(parcomm::Communicator& world, const RankLayout& layout,
                 const grid::Decomposition& decomposition,
                 const SenkfConfig& config, Index l, Index member, Index slot,
                 const grid::Patch& bar, PhaseCounters& phases) {
  BlockBatch batch(layout, decomposition, config, l, slot, 1);
  batch.add(member, bar);
  batch.flush(world, phases);
}

/// Tells every computation rank of latitude row `slot` that `member` is
/// permanently unreadable (accounted as missing in every stage).
void announce_dead(parcomm::Communicator& world, const RankLayout& layout,
                   const SenkfConfig& config, Index member, Index slot) {
  SENKF_LOG_WARN("senkf: dropping member ", member,
                 " (permanently unreadable), continuing on N-k members");
  for (Index i = 0; i < config.n_sdx; ++i) {
    parcomm::Packer packer;
    packer.put<std::uint64_t>(kKindDead);
    packer.put<std::uint64_t>(member);
    world.send(layout.comp_rank(i, slot), kBlockTag, packer.take());
  }
}

/// One bar read executed off the I/O rank's main thread, so the main
/// thread can give up after the straggler deadline and re-issue the bar
/// to a group peer while the slow read keeps grinding in the background.
/// Abandoned results are discarded on completion (the re-issued copy is
/// the one that reaches the computation ranks), so duplicates can only
/// arise from protocol races — which StageBuffers tolerates anyway.
class BarReader {
 public:
  enum class Status { kOk, kTimeout, kDead };
  struct Outcome {
    Status status = Status::kOk;
    grid::Patch bar;
  };

  using ReadFn = std::function<grid::Patch(Index, grid::IndexRange, Index)>;

  BarReader(ReadFn read_fn, int world_rank)
      : read_fn_(std::move(read_fn)), worker_([this, world_rank] {
          telemetry::set_thread_rank(world_rank);
          loop();
        }) {}

  ~BarReader() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  /// Blocks up to `deadline` for the read; kTimeout abandons the request
  /// (its eventual result is dropped).
  Outcome read(Index member, grid::IndexRange rows, Index stage,
               std::chrono::nanoseconds deadline) {
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      id = next_id_++;
      queue_.push_back(Request{member, rows, stage, id});
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    const bool done = cv_.wait_for(lock, deadline, [&] {
      return results_.find(id) != results_.end();
    });
    if (!done) {
      abandoned_.insert(id);
      return Outcome{Status::kTimeout, {}};
    }
    Outcome outcome = std::move(results_[id]);
    results_.erase(id);
    return outcome;
  }

 private:
  struct Request {
    Index member;
    grid::IndexRange rows;
    Index stage;
    std::uint64_t id;
  };

  void loop() {
    for (;;) {
      Request request;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        request = queue_.front();
        queue_.pop_front();
      }
      Outcome outcome;
      try {
        outcome.bar = read_fn_(request.member, request.rows, request.stage);
        outcome.status = Status::kOk;
      } catch (const pfs::PermanentReadError&) {
        outcome.status = Status::kDead;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (abandoned_.erase(request.id) == 0) {
          results_[request.id] = std::move(outcome);
        }
      }
      cv_.notify_all();
    }
  }

  ReadFn read_fn_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  std::map<std::uint64_t, Outcome> results_;
  std::set<std::uint64_t> abandoned_;
  std::uint64_t next_id_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

void run_io_rank(parcomm::Communicator& world, const RankLayout& layout,
                 const grid::Decomposition& decomposition,
                 const EnsembleStore& store, const SenkfConfig& config) {
  const Index group = layout.io_group(world.rank());
  const Index slot = layout.io_slot(world.rank());
  const Index n_members = store.members();
  PhaseCounters& phases = PhaseCounters::get();
  const pfs::FaultInjector* injector = injector_of(store);
  const int io_ordinal =
      world.rank() - static_cast<int>(config.computation_ranks());
  const std::chrono::nanoseconds straggle =
      injector != nullptr ? injector->straggler_delay(io_ordinal)
                          : std::chrono::nanoseconds::zero();
  const bool reissue_enabled =
      config.fault.straggler_deadline_s > 0.0 && config.n_sdy > 1;
  const auto deadline = std::chrono::nanoseconds(static_cast<std::int64_t>(
      config.fault.straggler_deadline_s * 1e9));
  const pfs::Sleeper sleeper = pfs::real_sleeper();

  /// Rows of the stage-l expanded bar for latitude row `for_slot`
  /// (identical across i; geometry shared with the timing plane).
  const auto bar_rows = [&](Index for_slot, Index l) {
    return decomposition
        .layer_expansion(grid::SubdomainId{0, for_slot}, l, config.layers)
        .y;
  };

  // The complete degraded read of one bar: injected straggler delay, then
  // the store read under the retry policy (TransientReadError → capped
  // exponential backoff with deterministic jitter → retry; exhaustion →
  // PermanentReadError).  Runs on the main thread, or on the BarReader
  // worker when straggler re-issue is armed.
  const auto perform_read = [&](Index member, grid::IndexRange rows,
                                Index l) -> grid::Patch {
    if (straggle > std::chrono::nanoseconds::zero()) {
      pfs::FaultMetrics& fault_metrics = pfs::FaultMetrics::get();
      fault_metrics.straggler_ns.add(
          static_cast<std::uint64_t>(straggle.count()));
      fault_metrics.injected.add(1);
      sleeper(straggle);
    }
    return pfs::with_retry(
        config.fault.retry, pfs::op_key(member, rows.begin), sleeper,
        [&] {
          telemetry::CountedSpan read_span(telemetry::Category::kRead,
                                           "bar_read", phases.io_read_ns,
                                           static_cast<std::int32_t>(l));
          return store.read_bar(member, rows);
        },
        [&](int) { phases.read_retries.add(1); });
  };

  std::set<Index> dead;
  const auto handle_permanent = [&](Index member, Index for_slot) {
    if (!config.fault.drop_unreadable_members) {
      // Tell every computation rank the run is unwinding before we throw,
      // so their main threads wake instead of waiting for stage data that
      // will never arrive.
      for (Index j = 0; j < config.n_sdy; ++j) {
        for (Index i = 0; i < config.n_sdx; ++i) {
          parcomm::Packer abort_msg;
          abort_msg.put<std::uint64_t>(kKindAbort);
          world.send(layout.comp_rank(i, j), kBlockTag, abort_msg.take());
        }
      }
      throw pfs::PermanentReadError(
          "senkf: member " + std::to_string(member) +
          " unreadable and drop_unreadable_members is off");
    }
    dead.insert(member);
    announce_dead(world, layout, config, member, for_slot);
  };

  std::optional<BarReader> reader;
  if (reissue_enabled) reader.emplace(perform_read, world.rank());

  // ---- straggler re-issue protocol (kIoCtrlTag, I/O peers of one group).
  // reissue{l, member, slot}: "read this bar for me and scatter it to my
  // row" — served between own reads and while waiting for acks/dones.
  // ack{l, member}: the re-issued bar reached the requester's row.
  // done: the sender finished its own schedule.  A rank exits once its
  // own schedule is resolved (all acks in) and every peer sent done;
  // per-(source, tag) ordering guarantees no request can trail its
  // sender's done.
  std::set<std::pair<Index, Index>> pending_acks;
  Index peers_done = 0;
  const Index n_peers = config.n_sdy - 1;

  const auto serve_reissue = [&](Index l, Index member, Index req_slot,
                                 int requester) {
    if (dead.count(member) != 0) {
      announce_dead(world, layout, config, member, req_slot);
    } else {
      try {
        const grid::Patch bar = perform_read(member, bar_rows(req_slot, l), l);
        scatter_bar(world, layout, decomposition, config, l, member, req_slot,
                    bar, phases);
      } catch (const pfs::PermanentReadError&) {
        handle_permanent(member, req_slot);
      }
    }
    parcomm::Packer ack;
    ack.put<std::uint64_t>(kCtrlAck);
    ack.put<std::uint64_t>(l);
    ack.put<std::uint64_t>(member);
    world.send(requester, kIoCtrlTag, ack.take());
  };

  const auto handle_ctrl = [&](const parcomm::Envelope& envelope) {
    parcomm::Unpacker unpacker(envelope.payload);
    const auto kind = unpacker.get<std::uint64_t>();
    if (kind == kCtrlReissue) {
      const auto l = unpacker.get<std::uint64_t>();
      const auto member = unpacker.get<std::uint64_t>();
      const auto req_slot = unpacker.get<std::uint64_t>();
      serve_reissue(l, member, req_slot, envelope.source);
    } else if (kind == kCtrlAck) {
      const auto l = unpacker.get<std::uint64_t>();
      const auto member = unpacker.get<std::uint64_t>();
      pending_acks.erase({l, member});
    } else {
      SENKF_REQUIRE(kind == kCtrlDone, "senkf: unknown I/O control kind");
      ++peers_done;
    }
  };

  const auto drain_ctrl = [&] {
    while (world.iprobe(parcomm::kAnySource, kIoCtrlTag)) {
      handle_ctrl(world.recv(parcomm::kAnySource, kIoCtrlTag));
    }
  };

  const Index members_per_group =
      (n_members + config.n_cg - 1) / config.n_cg;
  for (Index l = 0; l < config.layers; ++l) {
    const grid::IndexRange rows = bar_rows(slot, l);
    // One coalesced batch per (destination, layer): every member's block
    // rides in the same message (re-issued stragglers arrive separately
    // from the serving peer).
    BlockBatch batch(layout, decomposition, config, l, slot,
                     members_per_group);
    for (Index member = group; member < n_members; member += config.n_cg) {
      if (dead.count(member) != 0) continue;
      if (!reissue_enabled) {
        grid::Patch bar;
        try {
          bar = perform_read(member, rows, l);
        } catch (const pfs::PermanentReadError&) {
          handle_permanent(member, slot);
          continue;
        }
        batch.add(member, bar);
        continue;
      }

      drain_ctrl();  // serve peers between own reads, not just at the end
      const BarReader::Outcome outcome = reader->read(member, rows, l, deadline);
      switch (outcome.status) {
        case BarReader::Status::kOk:
          batch.add(member, outcome.bar);
          break;
        case BarReader::Status::kDead:
          handle_permanent(member, slot);
          break;
        case BarReader::Status::kTimeout: {
          // Deadline blown: hand the bar to the next reader of the group
          // and move on — the stage pipeline keeps flowing while this
          // rank's slow read finishes (and is then discarded).
          const Index peer_slot = (slot + 1) % config.n_sdy;
          parcomm::Packer request;
          request.put<std::uint64_t>(kCtrlReissue);
          request.put<std::uint64_t>(l);
          request.put<std::uint64_t>(member);
          request.put<std::uint64_t>(slot);
          world.send(layout.io_rank(group, peer_slot), kIoCtrlTag,
                     request.take());
          pending_acks.insert({l, member});
          phases.bars_reissued.add(1);
          SENKF_LOG_WARN("senkf: io rank ", world.rank(),
                         " re-issued bar (stage ", l, ", member ", member,
                         ") past the straggler deadline");
          break;
        }
      }
    }
    batch.flush(world, phases);
  }

  if (reissue_enabled) {
    for (Index s = 0; s < config.n_sdy; ++s) {
      if (s == slot) continue;
      parcomm::Packer done;
      done.put<std::uint64_t>(kCtrlDone);
      world.send(layout.io_rank(group, s), kIoCtrlTag, done.take());
    }
    while (!pending_acks.empty() || peers_done < n_peers) {
      handle_ctrl(world.recv(parcomm::kAnySource, kIoCtrlTag));
    }
    // ~BarReader waits for any abandoned slow read still in flight.
  }
}

/// Yˢ restricted to the surviving members (column k of the input belongs
/// to member k).
linalg::Matrix select_columns(const linalg::Matrix& matrix,
                              const std::vector<Index>& columns) {
  linalg::Matrix out(matrix.rows(), columns.size());
  for (linalg::Index i = 0; i < matrix.rows(); ++i) {
    for (linalg::Index j = 0; j < columns.size(); ++j) {
      out(i, j) = matrix(i, columns[j]);
    }
  }
  return out;
}

void run_comp_rank(parcomm::Communicator& world, const RankLayout& layout,
                   const grid::Decomposition& decomposition,
                   const EnsembleStore& store,
                   const obs::ObservationSet& observations,
                   const linalg::Matrix& perturbed,
                   const SenkfConfig& config,
                   std::vector<grid::Field>* result_out,
                   std::vector<Index>* dropped_out) {
  const grid::SubdomainId my_id{layout.comp_i(world.rank()),
                                layout.comp_j(world.rank())};
  const Index n_members = store.members();
  const int my_rank = world.rank();
  PhaseCounters& phases = PhaseCounters::get();
  StageBuffers buffers(config.layers, n_members);

  // Helper thread (§4.2): drains block and dead-member messages for this
  // rank into the stage buffers until every (stage, member) pair is
  // accounted — block arrived or member declared dead — and signals the
  // main thread per completed stage.  Its own failures are captured and
  // rethrown after the join; the join itself is guaranteed even when the
  // main thread unwinds (the I/O ranks keep resolving the remaining
  // members regardless, so the helper always drains to completion or
  // times out via the mailbox deadline).
  std::exception_ptr helper_error;
  std::uint64_t helper_messages = 0;
  std::thread helper([&world, &buffers, &helper_error, &helper_messages,
                      my_rank] {
    telemetry::set_thread_rank(my_rank);
    try {
      while (!buffers.complete()) {
        telemetry::TraceSpan span(telemetry::Category::kRecv, "drain_block");
        const parcomm::Envelope envelope =
            world.recv(parcomm::kAnySource, kBlockTag);
        ++helper_messages;
        parcomm::Unpacker unpacker(envelope.payload);
        const auto kind = unpacker.get<std::uint64_t>();
        if (kind == kKindDead) {
          buffers.mark_dead(unpacker.get<std::uint64_t>());
          continue;
        }
        if (kind == kKindAbort) {
          buffers.abort();  // complete() turns true; the loop exits
          continue;
        }
        SENKF_REQUIRE(kind == kKindBlock, "senkf: unknown block-message kind");
        const auto stage = unpacker.get<std::uint64_t>();
        span.set_stage(static_cast<std::int32_t>(stage));
        // Zero-copy deposit: every block in the batch becomes a view
        // into the payload, which the buffers retain until the run ends.
        buffers.retain(envelope.payload);
        while (!unpacker.exhausted()) {
          const auto member = unpacker.get<std::uint64_t>();
          buffers.deposit(stage, member, unpack_patch_view(unpacker));
        }
      }
    } catch (...) {
      helper_error = std::current_exception();
      buffers.abort();  // never leave the main thread blocked on us
    }
  });
  struct JoinGuard {
    std::thread& thread;
    ~JoinGuard() {
      if (thread.joinable()) thread.join();
    }
  } join_guard{helper};

  // Analysis pool (§4.2 extended): each completed stage is submitted as
  // an independent task, so while the helper thread drains stage l+1 and
  // the main thread blocks on take_stage, up to `analysis_threads` layer
  // analyses run concurrently.  Every task writes only its own slot of
  // `locals` / `stage_data`, and the results are packed in layer order
  // below — bit-identical output for any pool width.
  ThreadPool pool(
      ThreadPool::resolve_thread_count(config.analysis_threads));
  std::vector<StageBuffers::Stage> stage_data(config.layers);
  std::vector<AnalysisResult> locals(config.layers);

  // Phase accounting is measured where each phase happens: comp_wait is
  // the main thread blocked in take_stage, comp_update the summed
  // execution time of the analysis tasks (recorded inside each task, on
  // whichever pool thread ran it).
  for (Index l = 0; l < config.layers; ++l) {
    {
      telemetry::CountedSpan wait_span(telemetry::Category::kWait,
                                       "stage_wait", phases.comp_wait_ns,
                                       static_cast<std::int32_t>(l));
      stage_data[l] = buffers.take_stage(l);
    }

    pool.submit([&, l, my_rank] {
      telemetry::set_thread_rank(my_rank);
      telemetry::CountedSpan update_span(telemetry::Category::kUpdate,
                                         "local_analysis",
                                         phases.comp_update_ns,
                                         static_cast<std::int32_t>(l));
      const grid::Rect target = decomposition.layer(my_id, l, config.layers);
      // N−k degradation: the analysis runs on the surviving members with
      // the matching Yˢ columns; every ensemble moment is computed over
      // the live count, so the weights renormalize by construction.
      if (stage_data[l].live.size() == n_members) {
        locals[l] = local_analysis(stage_data[l].patches, target, observations,
                                   perturbed, config.analysis);
      } else {
        const linalg::Matrix live_ys =
            select_columns(perturbed, stage_data[l].live);
        locals[l] = local_analysis(stage_data[l].patches, target, observations,
                                   live_ys, config.analysis);
      }
    });
  }
  pool.wait_idle();

  // A member must be live in every stage or none: its file is dead from
  // the start or not at all (retry budgets outlast transient bursts).  A
  // mid-run death would mean stages analysed different ensembles.
  const std::vector<Index>& live = stage_data[0].live;
  for (Index l = 1; l < config.layers; ++l) {
    SENKF_REQUIRE(stage_data[l].live == live,
                  "senkf: member died mid-run; stages saw different ensembles");
  }

  parcomm::Packer results;
  {
    // Exact-size packing: one reserve (pool-recycled when a buffer
    // fits), zero reallocation while the layers stream in.
    std::size_t bytes = sizeof(std::uint64_t);
    for (Index l = 0; l < config.layers; ++l) {
      bytes += live.size() *
               (sizeof(std::uint64_t) +
                packed_patch_size(decomposition.layer(my_id, l, config.layers)));
    }
    results.reserve(bytes);
  }
  results.put<std::uint64_t>(config.layers * live.size());
  for (Index l = 0; l < config.layers; ++l) {
    for (std::size_t idx = 0; idx < live.size(); ++idx) {
      results.put<std::uint64_t>(live[idx]);
      pack_patch(results, locals[l].members[idx]);
    }
  }
  helper.join();
  if (helper_error) std::rethrow_exception(helper_error);

  phases.messages.add(helper_messages);

  if (world.rank() != 0) {
    world.send(0, kResultTag, results.take());
    return;
  }

  // Rank 0 assembles the analysis fields for the surviving members.
  const std::vector<Index> dropped = buffers.dead_members();
  phases.members_dropped.add(dropped.size());
  std::vector<Index> position(n_members, n_members);
  std::vector<grid::Field> fields;
  fields.reserve(live.size());
  const pfs::Sleeper sleeper = pfs::real_sleeper();
  for (std::size_t idx = 0; idx < live.size(); ++idx) {
    const Index member = live[idx];
    position[member] = static_cast<Index>(idx);
    // Background loads go through the same retry policy as bar reads: a
    // transient fault here must not abort a run the pipeline survived.
    fields.push_back(pfs::with_retry(
        config.fault.retry, pfs::op_key(member, ~std::uint64_t{0}), sleeper,
        [&] { return store.load_member(member); },
        [&](int) { phases.read_retries.add(1); }));
  }
  // Result payloads are consumed in place: each patch becomes a view
  // inserted straight into the member's field, no intermediate Patch.
  const auto apply = [&](const parcomm::SharedPayload& payload) {
    parcomm::Unpacker unpacker(payload);
    const auto count = unpacker.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto member = unpacker.get<std::uint64_t>();
      SENKF_REQUIRE(member < n_members && position[member] < n_members,
                    "senkf: result for a dropped or unknown member");
      fields[position[member]].insert(unpack_patch_view(unpacker));
    }
  };
  apply(results.take_shared());
  for (Index r = 1; r < config.computation_ranks(); ++r) {
    apply(world.recv(static_cast<int>(r), kResultTag).payload);
  }
  *result_out = std::move(fields);
  *dropped_out = dropped;
}

}  // namespace

std::vector<grid::Field> senkf(const EnsembleStore& store,
                               const obs::ObservationSet& observations,
                               const linalg::Matrix& perturbed,
                               const SenkfConfig& config, SenkfStats* stats) {
  const grid::Decomposition decomposition(store.grid(), config.n_sdx,
                                          config.n_sdy,
                                          config.analysis.halo);
  SENKF_REQUIRE(decomposition.valid_layer_count(config.layers),
                "senkf: L must divide the sub-domain row count");
  SENKF_REQUIRE(config.n_cg >= 1 && store.members() % config.n_cg == 0,
                "senkf: N must be a multiple of n_cg");
  // Validate analysis and fault options before any rank launches, so
  // configuration errors surface here rather than inside a running
  // pipeline.
  SENKF_REQUIRE(config.analysis.inflation >= 1.0,
                "senkf: inflation must be >= 1");
  SENKF_REQUIRE(config.analysis.ridge >= 0.0, "senkf: ridge must be >= 0");
  SENKF_REQUIRE(config.fault.retry.max_attempts >= 1,
                "senkf: retry.max_attempts must be >= 1");
  SENKF_REQUIRE(config.fault.retry.backoff_factor >= 1.0,
                "senkf: retry.backoff_factor must be >= 1");
  SENKF_REQUIRE(config.fault.retry.jitter >= 0.0 &&
                    config.fault.retry.jitter < 1.0,
                "senkf: retry.jitter must be in [0, 1)");
  SENKF_REQUIRE(config.fault.straggler_deadline_s >= 0.0,
                "senkf: straggler_deadline_s must be >= 0");

  const RankLayout layout(config);
  std::vector<grid::Field> result;
  std::vector<Index> dropped;

  // The facade is a per-run delta over the process-wide phase counters,
  // so callers keep the familiar SenkfStats struct while every number now
  // comes from the same telemetry the trace export shows.
  const PhaseCounters::Values before = PhaseCounters::get().values();

  // When drop_unreadable_members is off, the failing io rank broadcasts
  // an abort before throwing PermanentReadError, so computation ranks
  // wake with a ProtocolError — and whichever thread errors *first* is
  // what Runtime::run rethrows.  Record the root cause here so the
  // caller always sees the PermanentReadError, not a racing secondary.
  std::mutex abort_mutex;
  std::exception_ptr abort_error;

  try {
    parcomm::Runtime::run(
        static_cast<int>(config.total_ranks()),
        [&](parcomm::Communicator& world) {
          if (layout.is_io(world.rank())) {
            try {
              run_io_rank(world, layout, decomposition, store, config);
            } catch (const pfs::PermanentReadError&) {
              const std::lock_guard<std::mutex> lock(abort_mutex);
              if (!abort_error) abort_error = std::current_exception();
              throw;
            }
          } else {
            run_comp_rank(world, layout, decomposition, store, observations,
                          perturbed, config, &result, &dropped);
          }
        });
  } catch (...) {
    if (abort_error) std::rethrow_exception(abort_error);
    throw;
  }

  SENKF_REQUIRE(!result.empty(), "senkf: no result produced");
  if (stats != nullptr) {
    *stats = stats_between(before, PhaseCounters::get().values());
    stats->dropped_members = dropped;
  }
  return result;
}

}  // namespace senkf::enkf
