// S-EnKF: the paper's contribution (§4), numeric plane.
//
// The processor set splits into
//   * C₂ = n_sdx · n_sdy computation ranks, one per sub-domain, and
//   * C₁ = n_cg · n_sdy I/O ranks arranged as n_cg concurrent groups of
//     n_sdy bar readers (§4.1.3);
// driven by the multi-stage workflow of §4.2 / Fig. 8:
//
//   for each stage l = 0 .. L−1:
//     I/O rank (g, j):  read the stage-l expanded bar of every member file
//                       owned by group g (one contiguous read each), cut it
//                       into per-sub-domain blocks, send block (i, j) to
//                       computation rank (i, j);
//     computation rank (i, j):  a *helper thread* drains the incoming
//                       block messages into stage buffers and signals the
//                       main thread, which runs the local analysis of
//                       layer l−... as soon as its stage data is complete —
//                       overlapping its update of stage l with the
//                       reading/communication of stage l+1.
//
// Numerics are the shared local_analysis kernel, so the result is
// bit-identical to serial_enkf/penkf with the same decomposition and
// layer count (asserted in tests); only the schedule differs.
#pragma once

#include "enkf/serial_enkf.hpp"
#include "pfs/faults.hpp"
#include "telemetry/aggregate.hpp"

namespace senkf::enkf {

/// How the read path behaves when the file system misbehaves
/// (DESIGN.md §9).  Defaults survive transient faults out of the box;
/// straggler re-issue is opt-in because it spawns a reader thread per
/// I/O rank.
struct FaultToleranceOptions {
  /// Bar-read retry schedule: capped exponential backoff with
  /// deterministic jitter; exhausting it converts the failure into a
  /// permanent one.
  pfs::RetryPolicy retry;
  /// Wall-clock budget (seconds) one bar read may take before the bar is
  /// re-assigned to an idle I/O processor of the same concurrent group.
  /// 0 disables re-issue (reads wait indefinitely); requires n_sdy ≥ 2
  /// to have a peer to re-issue to.
  double straggler_deadline_s = 0.0;
  /// Drop an ensemble member whose file is permanently unreadable and
  /// continue the analysis on the surviving N−k members (ensemble
  /// weights renormalize automatically: every moment is computed over
  /// the live members).  When false the failure is rethrown and the run
  /// aborts.
  bool drop_unreadable_members = true;
};

/// Cross-rank observability plane (DESIGN.md §11).  When enabled, every
/// rank ships per-stage phase samples to rank 0 over a dedicated tag;
/// rank 0's in-band monitor computes per-stage read skew across I/O
/// ranks and concurrent groups, publishing `senkf.skew.*` /
/// `senkf.straggler.*` gauges and WARN-logging stragglers while the run
/// executes.  At run end all ranks' snapshots reduce to rank 0 along a
/// binomial tree; SenkfStats and the SENKF_REPORT run report are derived
/// from that aggregate.
struct MonitorOptions {
  bool enabled = true;
  /// WARN when a stage's slowest bar acquisition exceeds this multiple
  /// of the stage mean (env override: SENKF_SKEW_WARN=<ratio>|off).
  double skew_warn_ratio = 2.0;
  /// Ignore stages whose slowest acquisition is below this absolute
  /// time — μs-scale in-memory reads always jitter past any ratio.
  double min_warn_seconds = 1e-3;
};

struct SenkfConfig {
  Index n_sdx = 1;
  Index n_sdy = 1;
  Index layers = 1;  ///< L
  Index n_cg = 1;    ///< concurrent groups
  /// Width of each computation rank's analysis thread pool: completed
  /// stages are handed to the pool so several layers update concurrently
  /// while the helper thread keeps draining blocks.  0 = hardware
  /// concurrency capped at 8 (ThreadPool::default_thread_count); results
  /// are packed in layer order, so any width produces bit-identical
  /// analyses.
  Index analysis_threads = 0;
  AnalysisOptions analysis;
  FaultToleranceOptions fault;
  MonitorOptions monitor;

  Index computation_ranks() const { return n_sdx * n_sdy; }
  Index io_ranks() const { return n_cg * n_sdy; }
  Index total_ranks() const { return computation_ranks() + io_ranks(); }
};

/// Per-run instrumentation (numeric-plane analogue of Fig. 9's phases).
///
/// Every field is derived from the run's own cross-rank aggregation:
/// each rank accumulates its phase times into rank-local counters
/// (clock-identical to the global `senkf.*` counters — CountedSpan feeds
/// both from one clock pair) and the per-rank samples reduce to rank 0
/// at run end.  Because the numbers are per-run by construction,
/// back-to-back runs in one process never inherit each other's totals,
/// and a Registry::reset() between runs cannot skew them.
/// `comp_update_seconds` sums the execution time of each analysis task
/// on whichever pool thread ran it — with `analysis_threads > 1` it can
/// exceed a rank's wall-clock (work ran concurrently), and
/// `comp_wait_seconds` is main-thread blocking only, so the two never
/// double-count overlapped intervals.
struct SenkfStats {
  double io_read_seconds = 0.0;    ///< wall time I/O ranks spent reading
  double io_send_seconds = 0.0;    ///< wall time I/O ranks spent sending
  double comp_wait_seconds = 0.0;  ///< main threads blocked on stage data
  double comp_update_seconds = 0.0;  ///< summed analysis-task time
  std::uint64_t messages = 0;      ///< block messages delivered
  std::uint64_t read_retries = 0;  ///< bar-read attempts beyond the first
  std::uint64_t bars_reissued = 0; ///< bars re-assigned past a straggler
  /// Members dropped because their files were permanently unreadable
  /// (sorted); the returned ensemble holds the surviving members in
  /// member order.
  std::vector<Index> dropped_members;
  /// Straggler WARNs the in-band monitor raised during this run.
  std::uint64_t straggler_warns = 0;
  /// Whole-run bar-acquisition skew across I/O ranks (slowest / mean;
  /// 1 = perfectly balanced, 0 = no I/O samples).
  double read_skew = 0.0;
  /// Per-rank phase samples (sorted by rank) from the aggregation tree.
  std::vector<telemetry::RankSample> ranks;
};

/// Runs S-EnKF on C₁ + C₂ thread-backed ranks; returns the analysis
/// ensemble — one Field per *surviving* member (all N unless
/// `config.fault.drop_unreadable_members` dropped some).  `stats`, when
/// non-null, receives the phase instrumentation.
std::vector<grid::Field> senkf(const EnsembleStore& store,
                               const obs::ObservationSet& observations,
                               const linalg::Matrix& perturbed,
                               const SenkfConfig& config,
                               SenkfStats* stats = nullptr);

}  // namespace senkf::enkf
