#include "enkf/penkf.hpp"

#include <mutex>

#include "enkf/patch_wire.hpp"
#include "parcomm/runtime.hpp"
#include "support/thread_pool.hpp"
#include "telemetry/liveops/liveops.hpp"
#include "telemetry/liveops/profiler.hpp"
#include "telemetry/phase.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

namespace senkf::enkf {

namespace {
constexpr int kResultTag = 2;

/// Phase totals in the registry, so a PEnKF run shows up in the metrics
/// dump of the SENKF_REPORT export alongside the senkf.* counters.
struct PenkfCounters {
  telemetry::Counter& read_ns;
  telemetry::Counter& update_ns;

  static PenkfCounters& get() {
    auto& registry = telemetry::Registry::global();
    static PenkfCounters counters{
        registry.counter("penkf.read_ns"),
        registry.counter("penkf.update_ns"),
    };
    return counters;
  }
};

}  // namespace

std::vector<grid::Field> penkf(const EnsembleStore& store,
                               const obs::ObservationSet& observations,
                               const linalg::Matrix& perturbed,
                               const EnkfRunConfig& config) {
  const grid::Decomposition decomposition(store.grid(), config.n_sdx,
                                          config.n_sdy,
                                          config.analysis.halo);
  SENKF_REQUIRE(decomposition.valid_layer_count(config.layers),
                "penkf: L must divide the sub-domain row count");
  const int n_procs = static_cast<int>(decomposition.subdomain_count());
  const Index n_members = store.members();

  std::vector<grid::Field> result;
  std::mutex result_mutex;

  // Same continuous-telemetry arming as senkf(): no-ops unless
  // SENKF_SAMPLE_MS / SENKF_HTTP / SENKF_PROFILE / SENKF_WATCHDOG set.
  telemetry::ensure_sampler_started();
  telemetry::liveops::ensure_liveops_started();
  const telemetry::liveops::ProfileContextScope profile_ctx("penkf");

  parcomm::Runtime::run(n_procs, [&](parcomm::Communicator& world) {
    const grid::SubdomainId my_id =
        decomposition.subdomain_of_rank(static_cast<Index>(world.rank()));
    const grid::Rect my_expansion = decomposition.expansion(my_id);

    // --- phase 1: obtain local data by parallel block reading ------------
    std::vector<grid::Patch> my_members;
    my_members.reserve(n_members);
    {
      telemetry::CountedSpan read_span(telemetry::Category::kRead,
                                       "block_read_phase",
                                       PenkfCounters::get().read_ns);
      for (Index k = 0; k < n_members; ++k) {
        my_members.push_back(store.read_block(k, my_expansion));
      }
    }

    // --- phase 2: local update (no inter-processor communication) --------
    // The layer analyses are independent (they only read `my_members`),
    // so they fan out across the rank's analysis pool; each task packs
    // its layer straight off the projection and the payloads are
    // concatenated in layer order afterwards, keeping the output
    // bit-identical to the sequential loop for any pool width.  The
    // kernel gathers each layer's expansion window in place from the
    // subdomain bars — no per-layer extract() copies.
    std::vector<grid::PatchView> member_views(my_members.begin(),
                                              my_members.end());
    std::vector<Index> member_ids(n_members);
    for (Index k = 0; k < n_members; ++k) member_ids[k] = k;
    std::vector<parcomm::Packer> layer_packs(config.layers);
    ThreadPool pool(
        ThreadPool::resolve_thread_count(config.analysis_threads));
    const int my_rank = world.rank();
    pool.parallel_for(config.layers, [&, my_rank](std::size_t l) {
      telemetry::set_thread_rank(my_rank);
      telemetry::CountedSpan update_span(telemetry::Category::kUpdate,
                                         "local_analysis",
                                         PenkfCounters::get().update_ns,
                                         static_cast<std::int32_t>(l));
      const grid::Rect target = decomposition.layer(my_id, l, config.layers);
      const grid::Rect expansion =
          decomposition.layer_expansion(my_id, l, config.layers);
      parcomm::Packer& pack = layer_packs[l];
      pack.reserve(n_members *
                   (sizeof(std::uint64_t) + packed_patch_size(target)));
      local_analysis_packed(member_views, expansion, target, observations,
                            perturbed, config.analysis, member_ids,
                            LocalAnalysisWorkspace::for_this_thread(), pack);
    });
    parcomm::Packer results;
    {
      std::size_t bytes = sizeof(std::uint64_t);
      for (Index l = 0; l < config.layers; ++l) bytes += layer_packs[l].size();
      results.reserve(bytes);
    }
    results.put<std::uint64_t>(config.layers * n_members);
    for (Index l = 0; l < config.layers; ++l) {
      const parcomm::Payload payload = layer_packs[l].take();
      results.put_raw(payload.data(), payload.size());
    }

    // --- gather at rank 0 -------------------------------------------------
    if (world.rank() != 0) {
      world.send(0, kResultTag, results.take());
      return;
    }
    std::vector<grid::Field> fields;
    fields.reserve(n_members);
    for (Index k = 0; k < n_members; ++k) fields.push_back(store.load_member(k));
    // Consume result payloads in place: each patch is inserted into the
    // member's field as a view, no intermediate Patch.
    const auto apply = [&](const parcomm::SharedPayload& payload) {
      parcomm::Unpacker unpacker(payload);
      const auto count = unpacker.get<std::uint64_t>();
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto member = unpacker.get<std::uint64_t>();
        fields[member].insert(unpack_patch_view(unpacker));
      }
    };
    apply(results.take_shared());
    for (int r = 1; r < world.size(); ++r) {
      parcomm::Envelope envelope;
      {
        telemetry::TraceSpan wait_span(telemetry::Category::kWait,
                                       "result_wait");
        envelope = world.recv(r, kResultTag);
        wait_span.set_flow(telemetry::FlowDir::kIn, envelope.ctx.span_id);
      }
      apply(envelope.payload);
    }
    std::lock_guard<std::mutex> lock(result_mutex);
    result = std::move(fields);
  });

  SENKF_REQUIRE(!result.empty(), "penkf: no result produced");
  return result;
}

}  // namespace senkf::enkf
