#include "enkf/diagnostics.hpp"

#include <cmath>

#include "support/error.hpp"

namespace senkf::enkf {

double ensemble_rmse(const std::vector<grid::Field>& members,
                     const grid::Field& truth) {
  SENKF_REQUIRE(!members.empty(), "ensemble_rmse: empty ensemble");
  double sum = 0.0;
  for (const auto& member : members) sum += member.rmse_against(truth);
  return sum / static_cast<double>(members.size());
}

grid::Field ensemble_mean_field(const std::vector<grid::Field>& members) {
  SENKF_REQUIRE(!members.empty(), "ensemble_mean_field: empty ensemble");
  grid::Field mean(members.front().grid(), 0.0);
  const double inv = 1.0 / static_cast<double>(members.size());
  for (const auto& member : members) {
    SENKF_REQUIRE(member.size() == mean.size(),
                  "ensemble_mean_field: member size mismatch");
    for (Index i = 0; i < mean.size(); ++i) mean[i] += member[i] * inv;
  }
  return mean;
}

double mean_field_rmse(const std::vector<grid::Field>& members,
                       const grid::Field& truth) {
  return ensemble_mean_field(members).rmse_against(truth);
}

double max_ensemble_difference(const std::vector<grid::Field>& a,
                               const std::vector<grid::Field>& b) {
  SENKF_REQUIRE(a.size() == b.size(),
                "max_ensemble_difference: ensemble size mismatch");
  double worst = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    SENKF_REQUIRE(a[k].size() == b[k].size(),
                  "max_ensemble_difference: member size mismatch");
    for (Index i = 0; i < a[k].size(); ++i) {
      worst = std::max(worst, std::abs(a[k][i] - b[k][i]));
    }
  }
  return worst;
}

double ensemble_spread(const std::vector<grid::Field>& members) {
  SENKF_REQUIRE(members.size() >= 2, "ensemble_spread: need >= 2 members");
  const grid::Field mean = ensemble_mean_field(members);
  const double inv = 1.0 / static_cast<double>(members.size() - 1);
  double total = 0.0;
  for (Index i = 0; i < mean.size(); ++i) {
    double var = 0.0;
    for (const auto& member : members) {
      const double d = member[i] - mean[i];
      var += d * d;
    }
    total += std::sqrt(var * inv);
  }
  return total / static_cast<double>(mean.size());
}

}  // namespace senkf::enkf
