// Observation-space verification of assimilation systems.
//
// Skill-vs-truth (diagnostics.hpp) needs the truth, which operational
// systems never have.  These verify against the *observations*:
//
//  * innovation χ² — E[dᵀ(HBHᵀ+R)⁻¹d] should equal m for a statistically
//    consistent filter; values ≫ 1 per degree of freedom flag
//    overconfidence (spread collapse), ≪ 1 overdispersion;
//  * rank histogram — where each observed value ranks within the sorted
//    ensemble predictions; flat for a reliable ensemble, U-shaped for an
//    underdispersive one.
#pragma once

#include <vector>

#include "enkf/ensemble_store.hpp"
#include "obs/observation.hpp"

namespace senkf::enkf {

struct InnovationStats {
  double chi2 = 0.0;            ///< dᵀ(HBHᵀ+R)⁻¹d
  std::size_t observations = 0; ///< m: degrees of freedom
  double mean_innovation = 0.0; ///< bias indicator

  /// χ² per degree of freedom; ≈ 1 for a consistent filter.
  double normalized() const {
    return observations == 0 ? 0.0
                             : chi2 / static_cast<double>(observations);
  }
};

/// Innovation consistency of an ensemble against an observation set.
/// Forms the m×m innovation covariance HBHᵀ+R from the ensemble (sample
/// covariance in observation space) and solves it densely — intended for
/// verification-sized observation sets.
InnovationStats innovation_statistics(
    const std::vector<grid::Field>& ensemble,
    const obs::ObservationSet& observations);

/// Rank histogram (Talagrand diagram): counts[r] is how many observations
/// fell between the r-th and (r+1)-th sorted ensemble prediction
/// (N members ⇒ N+1 bins).  Observation error is added as perturbations
/// to the predictions so the comparison is like-with-like.
std::vector<std::size_t> rank_histogram(
    const std::vector<grid::Field>& ensemble,
    const obs::ObservationSet& observations, Rng& rng);

/// Discrepancy of a histogram from flatness: sum over bins of
/// (observed − expected)²/expected (a χ² statistic with bins−1 dof).
double histogram_flatness_chi2(const std::vector<std::size_t>& counts);

}  // namespace senkf::enkf
