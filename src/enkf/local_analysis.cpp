#include "enkf/local_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/covariance.hpp"
#include "linalg/ops.hpp"

namespace senkf::enkf {

linalg::PredecessorFn expansion_predecessors(grid::Rect expansion,
                                             grid::Halo halo) {
  const Index width = expansion.x.size();
  return [expansion, halo, width](linalg::Index i) {
    std::vector<linalg::Index> pred;
    const Index yi = i / width;
    const Index xi = i % width;
    // Earlier rows within η, and earlier columns of the same row within ξ.
    const Index y_first = yi > halo.eta ? yi - halo.eta : 0;
    for (Index y = y_first; y <= yi; ++y) {
      const Index x_first = xi > halo.xi ? xi - halo.xi : 0;
      const Index x_last =
          std::min(expansion.x.size() - 1, xi + halo.xi);
      for (Index x = x_first; x <= x_last; ++x) {
        const Index j = y * width + x;
        if (j < i) pred.push_back(j);
      }
    }
    return pred;
  };
}

namespace {

/// Projects the analysis matrix onto the target rectangle (the implicit
/// P of eq. (6)).
AnalysisResult project_to_target(const linalg::Matrix& xa, grid::Rect target,
                                 grid::Rect expansion,
                                 Index local_observations) {
  AnalysisResult result;
  result.local_observations = local_observations;
  const Index width = expansion.x.size();
  result.members.reserve(xa.cols());
  for (Index k = 0; k < xa.cols(); ++k) {
    grid::Patch out(target);
    for (Index y = target.y.begin; y < target.y.end; ++y) {
      for (Index x = target.x.begin; x < target.x.end; ++x) {
        const Index local_index =
            (y - expansion.y.begin) * width + (x - expansion.x.begin);
        out.at(x, y) = xa(local_index, k);
      }
    }
    result.members.push_back(std::move(out));
  }
  return result;
}

/// LETKF-style deterministic transform (Hunt et al. 2007): analysis in
/// the N-dimensional ensemble space,
///   P̃ = [(N−1)I + ỸᵀR⁻¹Ỹ]⁻¹,   w̄ = P̃ ỸᵀR⁻¹ (y − H x̄),
///   W = √(N−1) · P̃^{1/2},       Xᵃ = x̄1ᵀ + U (w̄1ᵀ + W).
AnalysisResult detail_deterministic_transform(
    const linalg::Matrix& xb, grid::Rect target, grid::Rect expansion,
    const obs::LocalObservations& local,
    const obs::ObservationSet& observations) {
  const Index n_members = xb.cols();
  const double scale = static_cast<double>(n_members - 1);

  const linalg::Vector mean = linalg::ensemble_mean(xb);
  linalg::Matrix anomalies = xb;
  for (Index i = 0; i < xb.rows(); ++i) {
    for (Index k = 0; k < n_members; ++k) anomalies(i, k) -= mean[i];
  }

  // Observation-space anomalies Ỹ = H U and innovation d = y − H x̄.
  const linalg::Matrix y_tilde = linalg::multiply(local.h(), anomalies);
  const linalg::Vector hx_mean = linalg::multiply(local.h(), mean);
  linalg::Vector innovation(local.size());
  for (Index r = 0; r < local.size(); ++r) {
    innovation[r] =
        observations.values()[local.selected()[r]] - hx_mean[r];
  }

  // Ensemble-space system: (N−1)I + Ỹᵀ R⁻¹ Ỹ.
  linalg::Vector rinv(local.size());
  for (Index r = 0; r < local.size(); ++r) {
    rinv[r] = 1.0 / local.r_diagonal()[r];
  }
  linalg::Matrix rinv_y = y_tilde;
  linalg::row_scale(rinv, rinv_y);
  linalg::Matrix system = linalg::multiply_at_b(y_tilde, rinv_y);
  for (Index k = 0; k < n_members; ++k) system(k, k) += scale;

  // P̃ via eigen-based inversion (shared with the symmetric square root).
  const linalg::SymmetricEigen eig = linalg::symmetric_eigen(system);
  linalg::Matrix v_scaled_inv = eig.vectors;     // V Λ⁻¹
  linalg::Matrix v_scaled_sqrt = eig.vectors;    // V Λ^{-1/2}
  for (Index j = 0; j < n_members; ++j) {
    if (eig.values[j] <= 0.0) {
      throw NumericError("deterministic transform: singular system");
    }
    const double inv = 1.0 / eig.values[j];
    const double inv_sqrt = std::sqrt(inv);
    for (Index i = 0; i < n_members; ++i) {
      v_scaled_inv(i, j) *= inv;
      v_scaled_sqrt(i, j) *= inv_sqrt;
    }
  }
  const linalg::Matrix p_tilde =
      linalg::multiply_a_bt(v_scaled_inv, eig.vectors);
  linalg::Matrix transform =
      linalg::multiply_a_bt(v_scaled_sqrt, eig.vectors);  // P̃^{1/2}
  linalg::scale(transform, std::sqrt(scale));             // √(N−1)·P̃^{1/2}

  // Mean weights w̄ = P̃ Ỹᵀ R⁻¹ d.
  const linalg::Vector rhs = linalg::multiply_at(rinv_y, innovation);
  const linalg::Vector w_mean = linalg::multiply(p_tilde, rhs);

  // Weight matrix columns: w̄ + W[:,k]; analysis Xᵃ = x̄1ᵀ + U W⁺.
  for (Index i = 0; i < n_members; ++i) {
    for (Index k = 0; k < n_members; ++k) transform(i, k) += w_mean[i];
  }
  linalg::Matrix xa = linalg::multiply(anomalies, transform);
  for (Index i = 0; i < xb.rows(); ++i) {
    for (Index k = 0; k < n_members; ++k) xa(i, k) += mean[i];
  }
  return project_to_target(xa, target, expansion, local.size());
}

}  // namespace

AnalysisResult local_analysis(std::span<const grid::PatchView> background,
                              grid::Rect target,
                              const obs::ObservationSet& observations,
                              const linalg::Matrix& perturbed,
                              const AnalysisOptions& options) {
  SENKF_REQUIRE(background.size() >= 2,
                "local_analysis: need at least 2 ensemble members");
  const grid::Rect expansion = background.front().rect();
  for (const auto& patch : background) {
    SENKF_REQUIRE(patch.rect() == expansion,
                  "local_analysis: members must share the expansion rect");
  }
  SENKF_REQUIRE(grid::rect_contains(expansion, target),
                "local_analysis: target must lie inside the expansion");
  SENKF_REQUIRE(perturbed.cols() == background.size(),
                "local_analysis: Ys must have one column per member");
  SENKF_REQUIRE(perturbed.rows() == observations.size(),
                "local_analysis: Ys must have one row per observation");

  const Index n_bar = expansion.count();
  const Index n_members = background.size();

  // Localize H, R and Yˢ to the expansion.
  const obs::LocalObservations local(observations, expansion);

  AnalysisResult result;
  result.local_observations = local.size();

  if (local.empty() && options.skip_without_obs) {
    // No information to assimilate: the analysis equals the background.
    result.members.reserve(n_members);
    for (const auto& patch : background) {
      result.members.push_back(patch.extract(target));
    }
    return result;
  }

  SENKF_REQUIRE(options.inflation >= 1.0,
                "local_analysis: inflation must be >= 1");

  // X̄ᵇ as an n̄×N matrix (row-major over the expansion).
  linalg::Matrix xb(n_bar, n_members);
  for (Index k = 0; k < n_members; ++k) {
    const auto& values = background[k].values();
    for (Index i = 0; i < n_bar; ++i) xb(i, k) = values[i];
  }

  // Multiplicative inflation: X ← x̄ + λ(X − x̄).
  if (options.inflation != 1.0) {
    const linalg::Vector mean = linalg::ensemble_mean(xb);
    for (Index i = 0; i < n_bar; ++i) {
      for (Index k = 0; k < n_members; ++k) {
        xb(i, k) = mean[i] + options.inflation * (xb(i, k) - mean[i]);
      }
    }
  }

  if (options.kind == AnalysisKind::kDeterministicTransform) {
    return detail_deterministic_transform(xb, target, expansion, local,
                                          observations);
  }

  // B̂⁻¹ from the localized modified Cholesky decomposition.
  const linalg::Matrix anomalies = linalg::ensemble_anomalies(xb);
  const linalg::ModifiedCholesky binv_factors =
      linalg::estimate_inverse_covariance(
          anomalies, expansion_predecessors(expansion, options.halo),
          options.ridge);
  linalg::Matrix system = binv_factors.inverse_covariance();

  // system += Hᵀ R⁻¹ H (R diagonal).
  const linalg::Matrix& h = local.h();
  const linalg::Vector& r_diag = local.r_diagonal();
  const Index m_bar = local.size();
  linalg::Vector rinv(m_bar);
  for (Index row = 0; row < m_bar; ++row) rinv[row] = 1.0 / r_diag[row];
  linalg::Matrix rinv_h = h;
  linalg::row_scale(rinv, rinv_h);
  const linalg::Matrix ht_rinv_h = linalg::multiply_at_b(h, rinv_h);
  linalg::axpy(1.0, ht_rinv_h, system);

  // Weighted innovations R⁻¹(Yˢ − H X̄ᵇ) in one fused pass, then
  // RHS = Hᵀ R⁻¹ D.
  const linalg::Matrix local_ys = local.select_rows(perturbed);
  const linalg::Matrix innovations =
      linalg::weighted_residual(local_ys, linalg::multiply(h, xb), rinv);
  const linalg::Matrix rhs = linalg::multiply_at_b(h, innovations);

  // δX = (B̂⁻¹ + Hᵀ R⁻¹ H)⁻¹ · RHS via Cholesky; Xᵃ = X̄ᵇ + δX.
  const linalg::Matrix delta = linalg::solve_spd(system, rhs);
  linalg::axpy(1.0, delta, xb);

  return project_to_target(xb, target, expansion, local.size());
}

AnalysisResult local_analysis(const std::vector<grid::Patch>& background,
                              grid::Rect target,
                              const obs::ObservationSet& observations,
                              const linalg::Matrix& perturbed,
                              const AnalysisOptions& options) {
  const std::vector<grid::PatchView> views(background.begin(),
                                           background.end());
  return local_analysis(std::span<const grid::PatchView>(views), target,
                        observations, perturbed, options);
}

}  // namespace senkf::enkf
