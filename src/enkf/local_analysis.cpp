#include "enkf/local_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "enkf/patch_wire.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/covariance.hpp"
#include "linalg/ops.hpp"
#include "obs/local_obs_cache.hpp"
#include "telemetry/metrics.hpp"

namespace senkf::enkf {

linalg::PredecessorFn expansion_predecessors(grid::Rect expansion,
                                             grid::Halo halo) {
  const Index width = expansion.x.size();
  return [expansion, halo, width](linalg::Index i) {
    std::vector<linalg::Index> pred;
    const Index yi = i / width;
    const Index xi = i % width;
    // Earlier rows within η, and earlier columns of the same row within ξ.
    const Index y_first = yi > halo.eta ? yi - halo.eta : 0;
    for (Index y = y_first; y <= yi; ++y) {
      const Index x_first = xi > halo.xi ? xi - halo.xi : 0;
      const Index x_last =
          std::min(expansion.x.size() - 1, xi + halo.xi);
      for (Index x = x_first; x <= x_last; ++x) {
        const Index j = y * width + x;
        if (j < i) pred.push_back(j);
      }
    }
    return pred;
  };
}

std::span<const linalg::Index> ExpansionPredecessorOracle::predecessors(
    linalg::Index i, support::Arena& scratch) {
  const Index width = expansion_.x.size();
  const Index yi = i / width;
  const Index xi = i % width;
  const Index y_first = yi > halo_.eta ? yi - halo_.eta : 0;
  const Index x_first = xi > halo_.xi ? xi - halo_.xi : 0;
  const Index x_last = std::min(expansion_.x.size() - 1, xi + halo_.xi);
  // Upper bound on the neighbourhood size; the estimator rewinds past
  // the unused tail with the rest of its per-row scratch.
  const Index bound = (yi - y_first + 1) * (x_last - x_first + 1);
  auto buffer = scratch.allocate_span<linalg::Index>(bound);
  Index count = 0;
  for (Index y = y_first; y <= yi; ++y) {
    for (Index x = x_first; x <= x_last; ++x) {
      const Index j = y * width + x;
      if (j < i) buffer[count++] = j;
    }
  }
  return buffer.first(count);
}

namespace {

telemetry::Counter& patches_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("analysis.patches");
  return c;
}

/// The ensemble gathered onto the expansion, with inflation applied and
/// the mean/anomalies computed in the same pass (one sweep over n̄ rows
/// instead of gather + mean + inflate + mean + subtract).  The summation
/// orders replicate linalg::ensemble_mean / ensemble_anomalies exactly,
/// so every downstream number matches the unfused implementation
/// bit-for-bit.
struct LoadedEnsemble {
  linalg::Matrix xb;         ///< X̄ᵇ, inflated (n̄×N)
  linalg::Matrix anomalies;  ///< X̄ᵇ − x̄1ᵀ (n̄×N)
  linalg::Vector mean;       ///< x̄ of the inflated ensemble (n̄)
};

LoadedEnsemble load_ensemble(std::span<const grid::PatchView> background,
                             grid::Rect expansion, double inflation,
                             LocalAnalysisWorkspace& ws) {
  const Index n_bar = expansion.count();
  const Index n_members = background.size();
  LoadedEnsemble out{ws.matrix(n_bar, n_members),
                     ws.matrix(n_bar, n_members), ws.vector(n_bar)};

  // Per-member pointer to the expansion origin inside the member's own
  // rect — members on a larger rect are gathered in place, no extraction.
  auto bases = ws.arena().allocate_span<const double*>(n_members);
  auto row_strides = ws.arena().allocate_span<Index>(n_members);
  for (Index k = 0; k < n_members; ++k) {
    const grid::Rect r = background[k].rect();
    bases[k] = background[k].values().data() +
               (expansion.y.begin - r.y.begin) * r.x.size() +
               (expansion.x.begin - r.x.begin);
    row_strides[k] = r.x.size();
  }

  const double inv = 1.0 / static_cast<double>(n_members);
  const Index exp_w = expansion.x.size();
  const Index exp_h = expansion.y.size();
  Index i = 0;
  for (Index dy = 0; dy < exp_h; ++dy) {
    for (Index dx = 0; dx < exp_w; ++dx, ++i) {
      double* xrow = out.xb.row(i).data();
      for (Index k = 0; k < n_members; ++k) {
        xrow[k] = bases[k][dy * row_strides[k] + dx];
      }
      double sum = 0.0;
      for (Index k = 0; k < n_members; ++k) sum += xrow[k];
      if (inflation != 1.0) {
        // X ← x̄ + λ(X − x̄), then the anomaly mean is re-derived from
        // the inflated ensemble (as ensemble_anomalies would).
        const double mean1 = sum * inv;
        for (Index k = 0; k < n_members; ++k) {
          xrow[k] = mean1 + inflation * (xrow[k] - mean1);
        }
        sum = 0.0;
        for (Index k = 0; k < n_members; ++k) sum += xrow[k];
      }
      const double mean = sum * inv;
      out.mean[i] = mean;
      double* arow = out.anomalies.row(i).data();
      for (Index k = 0; k < n_members; ++k) arow[k] = xrow[k] - mean;
    }
  }
  return out;
}

/// Stochastic modified-Cholesky update: returns Xᵃ on the expansion
/// (the inflated background updated in place by δX).
linalg::Matrix stochastic_update(LoadedEnsemble&& ens,
                                 const obs::LocalObservations& local,
                                 grid::Rect expansion,
                                 const AnalysisOptions& options,
                                 const linalg::Matrix& perturbed,
                                 LocalAnalysisWorkspace& ws) {
  const Index n_bar = ens.xb.rows();
  const Index n_members = ens.xb.cols();

  // B̂⁻¹ from the localized modified Cholesky decomposition.
  linalg::ModifiedCholesky binv;
  binv.l = ws.matrix(n_bar, n_bar);
  binv.d = ws.vector(n_bar);
  ExpansionPredecessorOracle oracle(expansion, options.halo);
  linalg::estimate_inverse_covariance_into(ens.anomalies, oracle,
                                           options.ridge, ws.arena(), binv);
  linalg::Matrix dinv_l = ws.matrix(n_bar, n_bar);
  linalg::Matrix system = ws.matrix(n_bar, n_bar);
  binv.inverse_covariance_into(dinv_l, system);

  // system += Hᵀ R⁻¹ H (R diagonal), precomputed with the localization.
  if (local.empty()) {
    // skip_without_obs=false on an empty rect: run the same (degenerate)
    // product the cache skips building, so the added term is the same
    // exact-zero matrix the unfused path formed.
    linalg::Matrix ht_rinv_h = ws.matrix(n_bar, n_bar);
    linalg::multiply_at_b_into(local.h(), local.rinv_h(), ht_rinv_h);
    linalg::axpy(1.0, ht_rinv_h, system);
  } else {
    linalg::axpy(1.0, local.ht_rinv_h(), system);
  }

  // Weighted innovations R⁻¹(Yˢ − H X̄ᵇ) in one fused pass, then
  // RHS = Hᵀ R⁻¹ D straight into the solve's in-place buffer.
  const Index m_bar = local.size();
  linalg::Matrix local_ys = ws.matrix(m_bar, n_members);
  local.select_rows_into(perturbed, local_ys);
  linalg::Matrix hxb = ws.matrix(m_bar, n_members);
  linalg::multiply_into(local.h(), ens.xb, hxb);
  linalg::Matrix innovations = ws.matrix(m_bar, n_members);
  linalg::weighted_residual_into(local_ys, hxb, local.r_inverse(),
                                 innovations);
  linalg::Matrix delta = ws.matrix(n_bar, n_members);
  linalg::multiply_at_b_into(local.h(), innovations, delta);

  // δX = (B̂⁻¹ + Hᵀ R⁻¹ H)⁻¹ · RHS via Cholesky; Xᵃ = X̄ᵇ + δX.
  linalg::Matrix lfac = ws.matrix(n_bar, n_bar);
  linalg::cholesky_factor_into(system, lfac);
  linalg::cholesky_solve_in_place(lfac, delta);
  linalg::axpy(1.0, delta, ens.xb);
  return std::move(ens.xb);
}

/// LETKF-style deterministic transform (Hunt et al. 2007): analysis in
/// the N-dimensional ensemble space,
///   P̃ = [(N−1)I + ỸᵀR⁻¹Ỹ]⁻¹,   w̄ = P̃ ỸᵀR⁻¹ (y − H x̄),
///   W = √(N−1) · P̃^{1/2},       Xᵃ = x̄1ᵀ + U (w̄1ᵀ + W).
linalg::Matrix deterministic_transform(const LoadedEnsemble& ens,
                                       const obs::LocalObservations& local,
                                       LocalAnalysisWorkspace& ws) {
  const Index n_bar = ens.xb.rows();
  const Index n_members = ens.xb.cols();
  const Index m_bar = local.size();
  const double scale = static_cast<double>(n_members - 1);

  // Observation-space anomalies Ỹ = H U and innovation d = y − H x̄.
  linalg::Matrix y_tilde = ws.matrix(m_bar, n_members);
  linalg::multiply_into(local.h(), ens.anomalies, y_tilde);
  linalg::Vector hx_mean = ws.vector(m_bar);
  linalg::multiply_into(local.h(), ens.mean, hx_mean);
  linalg::Vector innovation = ws.vector(m_bar);
  for (Index r = 0; r < m_bar; ++r) {
    innovation[r] = local.local_values()[r] - hx_mean[r];
  }

  // Ensemble-space system: (N−1)I + Ỹᵀ R⁻¹ Ỹ.
  linalg::Matrix rinv_y = ws.matrix(m_bar, n_members);
  rinv_y.assign_values(y_tilde);
  linalg::row_scale(local.r_inverse(), rinv_y);
  linalg::Matrix system = ws.matrix(n_members, n_members);
  linalg::multiply_at_b_into(y_tilde, rinv_y, system);
  for (Index k = 0; k < n_members; ++k) system(k, k) += scale;

  // P̃ via eigen-based inversion (shared with the symmetric square root).
  linalg::Vector eig_values = ws.vector(n_members);
  linalg::Matrix eig_vectors = ws.matrix(n_members, n_members);
  linalg::Matrix work_d = ws.matrix(n_members, n_members);
  linalg::Matrix work_v = ws.matrix(n_members, n_members);
  auto order = ws.indices(n_members);
  linalg::symmetric_eigen_into(system, eig_values, eig_vectors, work_d,
                               work_v, order);
  linalg::Matrix v_scaled_inv = ws.matrix(n_members, n_members);   // V Λ⁻¹
  linalg::Matrix v_scaled_sqrt = ws.matrix(n_members, n_members);  // V Λ^{-1/2}
  v_scaled_inv.assign_values(eig_vectors);
  v_scaled_sqrt.assign_values(eig_vectors);
  for (Index j = 0; j < n_members; ++j) {
    if (eig_values[j] <= 0.0) {
      throw NumericError("deterministic transform: singular system");
    }
    const double inv = 1.0 / eig_values[j];
    const double inv_sqrt = std::sqrt(inv);
    for (Index i = 0; i < n_members; ++i) {
      v_scaled_inv(i, j) *= inv;
      v_scaled_sqrt(i, j) *= inv_sqrt;
    }
  }
  linalg::Matrix p_tilde = ws.matrix(n_members, n_members);
  linalg::multiply_a_bt_into(v_scaled_inv, eig_vectors, p_tilde);
  linalg::Matrix transform = ws.matrix(n_members, n_members);  // P̃^{1/2}
  linalg::multiply_a_bt_into(v_scaled_sqrt, eig_vectors, transform);
  linalg::scale(transform, std::sqrt(scale));             // √(N−1)·P̃^{1/2}

  // Mean weights w̄ = P̃ Ỹᵀ R⁻¹ d.
  linalg::Vector rhs = ws.vector(n_members);
  linalg::multiply_at_into(rinv_y, innovation, rhs);
  linalg::Vector w_mean = ws.vector(n_members);
  linalg::multiply_into(p_tilde, rhs, w_mean);

  // Weight matrix columns: w̄ + W[:,k]; analysis Xᵃ = x̄1ᵀ + U W⁺.
  for (Index i = 0; i < n_members; ++i) {
    for (Index k = 0; k < n_members; ++k) transform(i, k) += w_mean[i];
  }
  linalg::Matrix xa = ws.matrix(n_bar, n_members);
  linalg::multiply_into(ens.anomalies, transform, xa);
  for (Index i = 0; i < n_bar; ++i) {
    for (Index k = 0; k < n_members; ++k) xa(i, k) += ens.mean[i];
  }
  return xa;
}

/// One engine behind every entry point: validate, localize (cached),
/// skip or compute Xᵃ on the expansion.  Emission — views, wire bytes,
/// or owning patches — is the caller's final step.
struct EngineOutput {
  std::shared_ptr<const obs::LocalObservations> local;
  linalg::Matrix xa;     ///< workspace scratch; unset when skipped
  bool skipped = false;  ///< no observations: analysis == background
};

EngineOutput analyze(std::span<const grid::PatchView> background,
                     grid::Rect expansion, grid::Rect target,
                     const obs::ObservationSet& observations,
                     const linalg::Matrix& perturbed,
                     const AnalysisOptions& options,
                     LocalAnalysisWorkspace& ws) {
  SENKF_REQUIRE(background.size() >= 2,
                "local_analysis: need at least 2 ensemble members");
  for (const auto& patch : background) {
    SENKF_REQUIRE(grid::rect_contains(patch.rect(), expansion),
                  "local_analysis: members must cover the expansion rect");
  }
  SENKF_REQUIRE(grid::rect_contains(expansion, target),
                "local_analysis: target must lie inside the expansion");
  SENKF_REQUIRE(perturbed.cols() == background.size(),
                "local_analysis: Ys must have one column per member");
  SENKF_REQUIRE(perturbed.rows() == observations.size(),
                "local_analysis: Ys must have one row per observation");

  patches_counter().add(1);

  EngineOutput out;
  out.local = obs::localized(observations, expansion);

  if (out.local->empty() && options.skip_without_obs) {
    // No information to assimilate: the analysis equals the background.
    out.skipped = true;
    return out;
  }

  SENKF_REQUIRE(options.inflation >= 1.0,
                "local_analysis: inflation must be >= 1");

  LoadedEnsemble ens =
      load_ensemble(background, expansion, options.inflation, ws);
  if (options.kind == AnalysisKind::kDeterministicTransform) {
    out.xa = deterministic_transform(ens, *out.local, ws);
  } else {
    out.xa = stochastic_update(std::move(ens), *out.local, expansion,
                               options, perturbed, ws);
  }
  return out;
}

/// Writes member k's target-rect values (the implicit P of eq. (6))
/// row-major into `dst` — exactly the order Patch::local_index induces.
void project_member(const linalg::Matrix& xa, Index k, grid::Rect target,
                    grid::Rect expansion, std::span<double> dst) {
  const Index width = expansion.x.size();
  Index o = 0;
  for (Index y = target.y.begin; y < target.y.end; ++y) {
    for (Index x = target.x.begin; x < target.x.end; ++x) {
      const Index local_index =
          (y - expansion.y.begin) * width + (x - expansion.x.begin);
      dst[o++] = xa(local_index, k);
    }
  }
}

/// Copies the target window of a member view row-major into `dst`
/// (the skip path's PatchView::extract without the owning Patch).
void extract_member(const grid::PatchView& member, grid::Rect target,
                    std::span<double> dst) {
  const std::span<const double> values = member.values();
  const Index row_width = target.x.size();
  Index o = 0;
  for (Index y = target.y.begin; y < target.y.end; ++y) {
    const Index src = member.local_index(target.x.begin, y);
    std::copy_n(values.begin() + src, row_width, dst.begin() + o);
    o += row_width;
  }
}

AnalysisResult materialize_result(const EngineOutput& out,
                                  std::span<const grid::PatchView> background,
                                  grid::Rect expansion, grid::Rect target,
                                  LocalAnalysisWorkspace& ws) {
  AnalysisResult result;
  result.local_observations = out.local->size();
  result.members.reserve(background.size());
  if (out.skipped) {
    for (const auto& patch : background) {
      result.members.push_back(patch.extract(target));
    }
    return result;
  }
  // Project into an arena slab, then range-construct the owning buffer —
  // no zero-fill-then-overwrite and no per-element index arithmetic.
  auto slab = ws.arena().allocate_span<double>(target.count());
  for (Index k = 0; k < background.size(); ++k) {
    project_member(out.xa, k, target, expansion, slab);
    result.members.emplace_back(target,
                                std::vector<double>(slab.begin(), slab.end()));
  }
  return result;
}

}  // namespace

AnalysisView local_analysis_scratch(std::span<const grid::PatchView> background,
                                    grid::Rect expansion, grid::Rect target,
                                    const obs::ObservationSet& observations,
                                    const linalg::Matrix& perturbed,
                                    const AnalysisOptions& options,
                                    LocalAnalysisWorkspace& workspace) {
  workspace.reset();
  const EngineOutput out = analyze(background, expansion, target,
                                   observations, perturbed, options,
                                   workspace);
  AnalysisView result;
  result.local_observations = out.local->size();
  auto views = workspace.views(background.size());
  for (Index k = 0; k < background.size(); ++k) {
    auto slab = workspace.arena().allocate_span<double>(target.count());
    if (out.skipped) {
      extract_member(background[k], target, slab);
    } else {
      project_member(out.xa, k, target, expansion, slab);
    }
    views[k] = grid::PatchView(target, slab);
  }
  result.members = views;
  return result;
}

void local_analysis_packed(std::span<const grid::PatchView> background,
                           grid::Rect expansion, grid::Rect target,
                           const obs::ObservationSet& observations,
                           const linalg::Matrix& perturbed,
                           const AnalysisOptions& options,
                           std::span<const Index> member_ids,
                           LocalAnalysisWorkspace& workspace,
                           parcomm::Packer& out) {
  SENKF_REQUIRE(member_ids.size() == background.size(),
                "local_analysis_packed: one member id per member");
  workspace.reset();
  const EngineOutput engine = analyze(background, expansion, target,
                                      observations, perturbed, options,
                                      workspace);
  for (Index k = 0; k < background.size(); ++k) {
    out.put<std::uint64_t>(member_ids[k]);
    if (engine.skipped) {
      pack_patch_block(out, background[k], target);
    } else {
      project_member(engine.xa, k, target, expansion,
                     pack_patch_slot(out, target));
    }
  }
}

AnalysisResult local_analysis(std::span<const grid::PatchView> background,
                              grid::Rect target,
                              const obs::ObservationSet& observations,
                              const linalg::Matrix& perturbed,
                              const AnalysisOptions& options) {
  SENKF_REQUIRE(background.size() >= 2,
                "local_analysis: need at least 2 ensemble members");
  const grid::Rect expansion = background.front().rect();
  for (const auto& patch : background) {
    SENKF_REQUIRE(patch.rect() == expansion,
                  "local_analysis: members must share the expansion rect");
  }
  LocalAnalysisWorkspace& ws = LocalAnalysisWorkspace::for_this_thread();
  ws.reset();
  const EngineOutput out = analyze(background, expansion, target,
                                   observations, perturbed, options, ws);
  return materialize_result(out, background, expansion, target, ws);
}

AnalysisResult local_analysis(const std::vector<grid::Patch>& background,
                              grid::Rect target,
                              const obs::ObservationSet& observations,
                              const linalg::Matrix& perturbed,
                              const AnalysisOptions& options) {
  SENKF_REQUIRE(background.size() >= 2,
                "local_analysis: need at least 2 ensemble members");
  LocalAnalysisWorkspace& ws = LocalAnalysisWorkspace::for_this_thread();
  ws.reset();
  // View list in the arena, not a per-call heap vector.
  auto views = ws.views(background.size());
  for (Index k = 0; k < background.size(); ++k) views[k] = background[k];
  const grid::Rect expansion = views.front().rect();
  for (const auto& patch : views) {
    SENKF_REQUIRE(patch.rect() == expansion,
                  "local_analysis: members must share the expansion rect");
  }
  const EngineOutput out = analyze(views, expansion, target, observations,
                                   perturbed, options, ws);
  return materialize_result(out, views, expansion, target, ws);
}

}  // namespace senkf::enkf
