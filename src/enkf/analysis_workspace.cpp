#include "enkf/analysis_workspace.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "telemetry/metrics.hpp"

namespace senkf::enkf {

namespace {

void max_update(telemetry::Gauge& gauge, std::int64_t candidate) {
  // Benign race: concurrent max-updates may momentarily publish the
  // smaller value; the next reset() republishes the true maximum.
  if (candidate > gauge.value()) gauge.set(candidate);
}

// Pool of workspaces that outlives any ThreadPool: workers lease one for
// their lifetime and return it (chunks and all) when the thread exits.
struct WorkspacePool {
  std::mutex mutex;
  std::vector<std::unique_ptr<LocalAnalysisWorkspace>> free;
};

WorkspacePool& pool() {
  static WorkspacePool instance;
  return instance;
}

struct Lease {
  std::unique_ptr<LocalAnalysisWorkspace> workspace;

  Lease() {
    WorkspacePool& p = pool();
    std::lock_guard lock(p.mutex);
    if (!p.free.empty()) {
      workspace = std::move(p.free.back());
      p.free.pop_back();
    } else {
      workspace = std::make_unique<LocalAnalysisWorkspace>();
    }
  }

  ~Lease() {
    // Publish the tail: allocations made by this thread's last analysis
    // would otherwise surface only at the *next* reset, smearing one
    // run's warm-up into the next run's steady-state counters.
    workspace->reset();
    WorkspacePool& p = pool();
    std::lock_guard lock(p.mutex);
    p.free.push_back(std::move(workspace));
  }
};

}  // namespace

LocalAnalysisWorkspace::LocalAnalysisWorkspace(support::Arena::Mode mode)
    : arena_(mode) {}

linalg::Matrix LocalAnalysisWorkspace::matrix(Index rows, Index cols) {
  const Index stride = linalg::Matrix::padded_stride(cols);
  auto storage = arena_.allocate_span<double>(rows * stride);
  std::fill(storage.begin(), storage.end(), 0.0);
  return linalg::Matrix::scratch(storage, rows, cols, stride);
}

linalg::Vector LocalAnalysisWorkspace::vector(Index size) {
  auto storage = arena_.allocate_span<double>(size);
  std::fill(storage.begin(), storage.end(), 0.0);
  return linalg::Vector::scratch(storage);
}

std::span<double> LocalAnalysisWorkspace::doubles(Index count) {
  auto storage = arena_.allocate_span<double>(count);
  std::fill(storage.begin(), storage.end(), 0.0);
  return storage;
}

std::span<linalg::Index> LocalAnalysisWorkspace::indices(Index count) {
  return arena_.allocate_span<linalg::Index>(count);
}

std::span<grid::PatchView> LocalAnalysisWorkspace::views(Index count) {
  // PatchView is not an implicit-lifetime type, so start each slot's
  // lifetime explicitly (trivial destructor — rewinding is enough).
  void* storage = arena_.allocate(count * sizeof(grid::PatchView));
  auto* first = static_cast<grid::PatchView*>(storage);
  for (Index i = 0; i < count; ++i) new (first + i) grid::PatchView();
  return {first, count};
}

void LocalAnalysisWorkspace::reset() {
  arena_.reset();
  const support::Arena::Stats& stats = arena_.stats();

  static telemetry::Counter& alloc_events =
      telemetry::Registry::global().counter("analysis.alloc.events");
  static telemetry::Counter& resets =
      telemetry::Registry::global().counter("analysis.arena.resets");
  static telemetry::Gauge& high_water =
      telemetry::Registry::global().gauge("analysis.arena.high_water");
  static telemetry::Gauge& capacity =
      telemetry::Registry::global().gauge("analysis.arena.capacity");

  alloc_events.add(stats.chunk_allocs - published_allocs_);
  published_allocs_ = stats.chunk_allocs;
  resets.add(1);
  max_update(high_water, static_cast<std::int64_t>(stats.high_water_bytes));
  max_update(capacity, static_cast<std::int64_t>(stats.capacity_bytes));
}

LocalAnalysisWorkspace& LocalAnalysisWorkspace::for_this_thread() {
  thread_local Lease lease;
  return *lease.workspace;
}

}  // namespace senkf::enkf
