#include "enkf/verification.hpp"

#include <algorithm>

#include "linalg/cholesky.hpp"
#include "linalg/covariance.hpp"
#include "linalg/ops.hpp"

namespace senkf::enkf {

InnovationStats innovation_statistics(
    const std::vector<grid::Field>& ensemble,
    const obs::ObservationSet& observations) {
  SENKF_REQUIRE(ensemble.size() >= 2,
                "innovation_statistics: need >= 2 members");
  const Index m = observations.size();
  const Index n_members = ensemble.size();
  SENKF_REQUIRE(m > 0, "innovation_statistics: need observations");

  // Ensemble predictions in observation space: columns are members.
  linalg::Matrix predictions(m, n_members);
  for (Index k = 0; k < n_members; ++k) {
    for (Index r = 0; r < m; ++r) {
      predictions(r, k) = observations.components()[r].apply(ensemble[k]);
    }
  }

  // Innovation d = y − H x̄ and S = HBHᵀ + R.
  const linalg::Vector mean = linalg::ensemble_mean(predictions);
  linalg::Vector innovation(m);
  double bias = 0.0;
  for (Index r = 0; r < m; ++r) {
    innovation[r] = observations.values()[r] - mean[r];
    bias += innovation[r];
  }
  linalg::Matrix s = linalg::sample_covariance(predictions);
  for (Index r = 0; r < m; ++r) {
    const double std_dev = observations.components()[r].error_std;
    s(r, r) += std_dev * std_dev;
  }

  InnovationStats stats;
  stats.observations = m;
  stats.mean_innovation = bias / static_cast<double>(m);
  stats.chi2 = linalg::dot(innovation,
                           linalg::CholeskyFactor(s).solve(innovation));
  return stats;
}

std::vector<std::size_t> rank_histogram(
    const std::vector<grid::Field>& ensemble,
    const obs::ObservationSet& observations, Rng& rng) {
  SENKF_REQUIRE(ensemble.size() >= 2, "rank_histogram: need >= 2 members");
  const Index n_members = ensemble.size();
  std::vector<std::size_t> counts(n_members + 1, 0);

  std::vector<double> predictions(n_members);
  for (Index r = 0; r < observations.size(); ++r) {
    const auto& component = observations.components()[r];
    for (Index k = 0; k < n_members; ++k) {
      // Perturb predictions by the observation error so the ensemble and
      // the observation live in the same (noisy) space.
      predictions[k] = component.apply(ensemble[k]) +
                       rng.normal(0.0, component.error_std);
    }
    std::sort(predictions.begin(), predictions.end());
    const double value = observations.values()[r];
    const std::size_t rank =
        std::lower_bound(predictions.begin(), predictions.end(), value) -
        predictions.begin();
    ++counts[rank];
  }
  return counts;
}

double histogram_flatness_chi2(const std::vector<std::size_t>& counts) {
  SENKF_REQUIRE(!counts.empty(), "histogram_flatness_chi2: empty histogram");
  double total = 0.0;
  for (const std::size_t c : counts) total += static_cast<double>(c);
  SENKF_REQUIRE(total > 0.0, "histogram_flatness_chi2: no samples");
  const double expected = total / static_cast<double>(counts.size());
  double chi2 = 0.0;
  for (const std::size_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

}  // namespace senkf::enkf
