// Cycled (sequential) data assimilation.
//
// The operational loop the paper's system serves: forecast the ensemble
// with the dynamical model, observe the (hidden) truth, assimilate with
// S-EnKF, repeat — the analysis of cycle t is the initial condition of
// cycle t+1 (§1).  A free-running ensemble (never assimilated) is carried
// alongside as the control, so the skill gained by assimilation is
// measurable per cycle.
#pragma once

#include "enkf/senkf.hpp"
#include "model/advection.hpp"

namespace senkf::enkf {

struct CycleConfig {
  Index cycles = 10;            ///< number of forecast-analysis cycles
  Index steps_per_cycle = 4;    ///< model steps between analyses
  obs::NetworkOptions network;  ///< observation network drawn each cycle
  SenkfConfig assimilation;     ///< S-EnKF configuration (incl. inflation)
  std::uint64_t seed = 1;       ///< drives networks and perturbations

  /// Innovation-driven adaptive inflation: before each analysis the
  /// inflation factor is nudged by the background's innovation
  /// consistency, λ ← clamp(λ·(χ²/m)^{1/4}, [min, max]) — overconfidence
  /// (χ²/m > 1) raises λ, overdispersion lowers it.  Overrides the static
  /// `assimilation.analysis.inflation` when enabled.
  bool adaptive_inflation = false;
  double inflation_min = 1.0;
  double inflation_max = 1.5;
};

/// Per-cycle skill record.
struct CycleRecord {
  double background_rmse = 0.0;  ///< ensemble-mean RMSE before analysis
  double analysis_rmse = 0.0;    ///< ensemble-mean RMSE after analysis
  double free_rmse = 0.0;        ///< never-assimilated control ensemble
  double spread = 0.0;           ///< analysis ensemble spread
  /// Innovation χ²/m of the background against this cycle's observations
  /// (verification.hpp); drifts above ~1 when the filter grows
  /// overconfident — the signal that motivates inflation.
  double innovation_chi2 = 0.0;
  /// Inflation factor actually used this cycle (varies when adaptive).
  double inflation_used = 1.0;
};

struct CycleResult {
  std::vector<CycleRecord> records;
  std::vector<grid::Field> final_analysis;
  grid::Field final_truth;
};

/// Runs `config.cycles` forecast-analysis cycles starting from `truth`
/// and `ensemble` (which also seeds the free-running control).
CycleResult run_cycled_assimilation(const model::AdvectionDiffusion& dynamics,
                                    grid::Field truth,
                                    std::vector<grid::Field> ensemble,
                                    const CycleConfig& config);

}  // namespace senkf::enkf
