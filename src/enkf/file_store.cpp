#include "enkf/file_store.hpp"

#include <fstream>

#include "telemetry/phase.hpp"

namespace senkf::enkf {

namespace {

// Real disk I/O gets real spans; the counter feeds the metrics snapshot
// (store.file_read_ns) so file-backed read time is visible even with
// tracing off.
telemetry::Counter& file_read_ns() {
  static telemetry::Counter& counter =
      telemetry::Registry::global().counter("store.file_read_ns");
  return counter;
}

constexpr std::uint32_t kMagic = 0x534B4645;  // "EFKS"
constexpr std::uint32_t kVersion = 1;

struct FileHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint64_t nx = 0;
  std::uint64_t ny = 0;
};

std::filesystem::path path_for(const std::filesystem::path& directory,
                               Index k) {
  return directory / ("member_" + std::to_string(k) + ".senkf");
}

std::ifstream open_member(const std::filesystem::path& path,
                          const grid::LatLonGrid& grid_def) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw ProtocolError("FileEnsembleStore: cannot open " + path.string());
  }
  FileHeader header;
  file.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!file || header.magic != kMagic || header.version != kVersion) {
    throw ProtocolError("FileEnsembleStore: bad header in " + path.string());
  }
  if (header.nx != grid_def.nx() || header.ny != grid_def.ny()) {
    throw ProtocolError("FileEnsembleStore: grid mismatch in " +
                        path.string());
  }
  return file;
}

/// Byte offset of grid point (x, y) within the file body.
std::streamoff offset_of(const grid::LatLonGrid& grid_def, Index x,
                         Index y) {
  return static_cast<std::streamoff>(sizeof(FileHeader)) +
         static_cast<std::streamoff>(grid_def.flat_index(x, y)) *
             static_cast<std::streamoff>(sizeof(double));
}

void read_span(std::ifstream& file, const std::filesystem::path& path,
               std::streamoff offset, double* out, std::size_t count) {
  file.seekg(offset);
  file.read(reinterpret_cast<char*>(out),
            static_cast<std::streamsize>(count * sizeof(double)));
  if (!file) {
    throw ProtocolError("FileEnsembleStore: short read in " + path.string());
  }
}

}  // namespace

FileEnsembleStore::FileEnsembleStore(const grid::LatLonGrid& grid_def,
                                     std::filesystem::path directory,
                                     Index n_members)
    : grid_(grid_def),
      directory_(std::move(directory)),
      n_members_(n_members) {
  SENKF_REQUIRE(n_members >= 2,
                "FileEnsembleStore: need at least 2 ensemble members");
  for (Index k = 0; k < n_members; ++k) {
    open_member(path_for(directory_, k), grid_);  // header validation
  }
}

std::filesystem::path FileEnsembleStore::member_path(Index k) const {
  SENKF_REQUIRE(k < n_members_, "FileEnsembleStore: member out of range");
  return path_for(directory_, k);
}

grid::Field FileEnsembleStore::load_member(Index k) const {
  telemetry::CountedSpan span(telemetry::Category::kRead, "file_load_member",
                              file_read_ns());
  const auto path = member_path(k);
  std::ifstream file = open_member(path, grid_);
  std::vector<double> buffer(grid_.size());
  read_span(file, path, offset_of(grid_, 0, 0), buffer.data(),
            buffer.size());
  count_access(1);
  return grid::Field(grid_, std::move(buffer));
}

grid::Patch FileEnsembleStore::read_block(Index k, grid::Rect rect) const {
  telemetry::CountedSpan span(telemetry::Category::kRead, "file_read_block",
                              file_read_ns());
  SENKF_REQUIRE(rect.x.end <= grid_.nx() && rect.y.end <= grid_.ny(),
                "FileEnsembleStore: rect outside grid");
  const auto path = member_path(k);
  std::ifstream file = open_member(path, grid_);
  grid::Patch patch(rect);
  if (rect.x.begin == 0 && rect.x.end == grid_.nx()) {
    // Full-width: one contiguous read.
    read_span(file, path, offset_of(grid_, 0, rect.y.begin),
              patch.values().data(), patch.size());
    count_access(1);
    return patch;
  }
  // One seek + read per latitude row: the genuine block-reading pattern.
  double* out = patch.values().data();
  for (Index y = rect.y.begin; y < rect.y.end; ++y) {
    read_span(file, path, offset_of(grid_, rect.x.begin, y), out,
              rect.x.size());
    out += rect.x.size();
  }
  count_access(rect.y.size());
  return patch;
}

grid::Patch FileEnsembleStore::read_bar(Index k,
                                        grid::IndexRange rows) const {
  telemetry::CountedSpan span(telemetry::Category::kRead, "file_read_bar",
                              file_read_ns());
  SENKF_REQUIRE(rows.end <= grid_.ny(),
                "FileEnsembleStore: rows outside grid");
  const auto path = member_path(k);
  std::ifstream file = open_member(path, grid_);
  grid::Patch patch(grid::Rect{{0, grid_.nx()}, rows});
  read_span(file, path, offset_of(grid_, 0, rows.begin),
            patch.values().data(), patch.size());
  count_access(1);
  return patch;
}

FileEnsembleStore write_ensemble(const grid::LatLonGrid& grid_def,
                                 const std::vector<grid::Field>& members,
                                 const std::filesystem::path& directory) {
  SENKF_REQUIRE(members.size() >= 2,
                "write_ensemble: need at least 2 ensemble members");
  std::filesystem::create_directories(directory);
  for (Index k = 0; k < members.size(); ++k) {
    SENKF_REQUIRE(members[k].size() == grid_def.size(),
                  "write_ensemble: member grid mismatch");
    const auto path = path_for(directory, k);
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) {
      throw ProtocolError("write_ensemble: cannot create " + path.string());
    }
    FileHeader header;
    header.nx = grid_def.nx();
    header.ny = grid_def.ny();
    file.write(reinterpret_cast<const char*>(&header), sizeof(header));
    file.write(reinterpret_cast<const char*>(members[k].data().data()),
               static_cast<std::streamsize>(members[k].size() *
                                            sizeof(double)));
    if (!file) {
      throw ProtocolError("write_ensemble: short write to " + path.string());
    }
  }
  return FileEnsembleStore(grid_def, directory, members.size());
}

}  // namespace senkf::enkf
