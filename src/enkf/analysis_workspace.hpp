// Per-worker workspace of the zero-allocation analysis hot path
// (DESIGN.md §15).
//
// A LocalAnalysisWorkspace owns one support::Arena and hands the local
// analysis its temporaries as arena-backed scratch Matrix/Vector objects
// (linalg/matrix.hpp).  `reset()` rewinds the arena between patches, so
// after the first patch of the largest shape the engine has seen, an
// analysis performs no heap allocation at all — the property the
// `analysis.alloc.events` counter certifies (its delta stays 0 across a
// steady-state cycle).
//
// Workspaces are checked out of a process-wide pool, one per thread
// (`for_this_thread()`): ThreadPool workers die with their pool at the
// end of a run, but their workspaces — warmed-up chunks included — go
// back to the free list and are re-leased by the next run's workers.
// That is what makes the *second* service job / cycle allocation-free,
// not just the second patch.
#pragma once

#include <span>

#include "grid/field.hpp"
#include "linalg/matrix.hpp"
#include "support/arena.hpp"

namespace senkf::enkf {

using grid::Index;

class LocalAnalysisWorkspace {
 public:
  /// Mode is forwarded to the arena — tests pin kPooled/kHeap to compare
  /// the two allocation strategies explicitly; the pool uses kAuto
  /// (SENKF_ARENA).
  explicit LocalAnalysisWorkspace(
      support::Arena::Mode mode = support::Arena::Mode::kAuto);

  LocalAnalysisWorkspace(const LocalAnalysisWorkspace&) = delete;
  LocalAnalysisWorkspace& operator=(const LocalAnalysisWorkspace&) = delete;

  support::Arena& arena() { return arena_; }

  /// Zero-filled scratch matrix in the default padded layout — same
  /// stride, same pad-zero state as an owning `Matrix(rows, cols)`, so
  /// kernel results are bit-identical.
  linalg::Matrix matrix(Index rows, Index cols);

  /// Zero-filled scratch vector.
  linalg::Vector vector(Index size);

  /// Zero-filled raw scratch.
  std::span<double> doubles(Index count);

  /// Index scratch (uninitialized — callers overwrite).
  std::span<linalg::Index> indices(Index count);

  /// Default-constructed PatchView slots (for building AnalysisView
  /// member lists in arena storage).
  std::span<grid::PatchView> views(Index count);

  /// Rewinds the arena (everything handed out above dies) and publishes
  /// the allocation/occupancy metrics:
  ///   analysis.alloc.events   += new heap allocations since last reset
  ///   analysis.arena.resets   += 1
  ///   analysis.arena.high_water  max-updated (bytes)
  ///   analysis.arena.capacity    max-updated (bytes)
  void reset();

  /// This thread's leased workspace (checked out of the process pool on
  /// first use, returned at thread exit).
  static LocalAnalysisWorkspace& for_this_thread();

 private:
  support::Arena arena_;
  std::uint64_t published_allocs_ = 0;
};

}  // namespace senkf::enkf
