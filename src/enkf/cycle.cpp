#include "enkf/cycle.hpp"

#include <algorithm>
#include <cmath>

#include "enkf/diagnostics.hpp"
#include "enkf/verification.hpp"
#include "obs/perturbed.hpp"

namespace senkf::enkf {

CycleResult run_cycled_assimilation(const model::AdvectionDiffusion& dynamics,
                                    grid::Field truth,
                                    std::vector<grid::Field> ensemble,
                                    const CycleConfig& config) {
  SENKF_REQUIRE(config.cycles > 0, "cycled assimilation: need cycles");
  SENKF_REQUIRE(ensemble.size() >= 2,
                "cycled assimilation: need at least 2 members");

  SENKF_REQUIRE(!config.adaptive_inflation ||
                    (config.inflation_min >= 1.0 &&
                     config.inflation_max >= config.inflation_min),
                "cycled assimilation: bad adaptive inflation bounds");

  const Rng base_rng(config.seed);
  std::vector<grid::Field> free_run = ensemble;  // never assimilated
  SenkfConfig assimilation = config.assimilation;

  CycleResult result{{}, {}, truth};
  result.records.reserve(config.cycles);

  for (Index cycle = 0; cycle < config.cycles; ++cycle) {
    // Forecast: truth, assimilated ensemble and control advance together.
    truth = dynamics.advance(std::move(truth), config.steps_per_cycle);
    dynamics.advance_ensemble(ensemble, config.steps_per_cycle);
    dynamics.advance_ensemble(free_run, config.steps_per_cycle);

    // Observe the truth with a freshly drawn network (moving platforms).
    Rng cycle_rng = base_rng.child(1000 + cycle);
    const auto observations = obs::random_network(
        dynamics.mesh(), truth, cycle_rng, config.network);
    const auto ys = obs::perturbed_observations(
        observations, ensemble.size(), base_rng.child(2000 + cycle));

    CycleRecord record;
    record.background_rmse = mean_field_rmse(ensemble, truth);
    record.free_rmse = mean_field_rmse(free_run, truth);
    record.innovation_chi2 =
        innovation_statistics(ensemble, observations).normalized();

    if (config.adaptive_inflation) {
      // Quarter-power damping keeps the adjustment stable cycle-to-cycle.
      const double adjusted = assimilation.analysis.inflation *
                              std::pow(record.innovation_chi2, 0.25);
      assimilation.analysis.inflation =
          std::clamp(adjusted, config.inflation_min, config.inflation_max);
    }
    record.inflation_used = assimilation.analysis.inflation;

    // Analysis: S-EnKF over the in-memory store of this cycle's
    // background.
    const MemoryEnsembleStore store(dynamics.mesh(), ensemble);
    ensemble = senkf(store, observations, ys, assimilation);

    record.analysis_rmse = mean_field_rmse(ensemble, truth);
    record.spread = ensemble_spread(ensemble);
    result.records.push_back(record);
  }

  result.final_analysis = std::move(ensemble);
  result.final_truth = std::move(truth);
  return result;
}

}  // namespace senkf::enkf
