// Fault-injecting EnsembleStore decorator (DESIGN.md §9).
//
// Wraps any EnsembleStore and turns a pfs::FaultPlan's decisions into the
// failures a real parallel file system produces: reads of dead members
// throw PermanentReadError, transiently faulty reads throw
// TransientReadError for the first `burst` attempts and then succeed —
// deterministically, because every decision is a pure hash of
// (seed, member, operation), never of wall-clock or thread order.  The
// S-EnKF read path retries / degrades around these (senkf.cpp); the
// decorator itself stays policy-free.
#pragma once

#include "enkf/ensemble_store.hpp"
#include "pfs/faults.hpp"

namespace senkf::enkf {

class FaultyEnsembleStore final : public EnsembleStore {
 public:
  /// `base` must outlive the decorator.
  FaultyEnsembleStore(const EnsembleStore& base, pfs::FaultPlan plan);

  const grid::LatLonGrid& grid() const override { return base_.grid(); }
  Index members() const override { return base_.members(); }
  grid::Field load_member(Index k) const override;
  grid::Patch read_block(Index k, grid::Rect rect) const override;
  grid::Patch read_bar(Index k, grid::IndexRange rows) const override;

  const pfs::FaultInjector& injector() const { return injector_; }

 private:
  /// Throws Permanent/TransientReadError per the plan; returns otherwise.
  void maybe_fail(Index k, std::uint64_t key, const char* op) const;

  const EnsembleStore& base_;
  pfs::FaultInjector injector_;
};

}  // namespace senkf::enkf
