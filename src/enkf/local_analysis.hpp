// The local analysis kernel — paper equation (6).
//
// Given the background ensemble restricted to an expansion D̄ (one Patch
// per member), the observations localized to D̄ and the member-wise
// perturbed observations Yˢ, the kernel computes
//
//   Xᵃ = P · [ X̄ᵇ + (B̂⁻¹ + Hᵀ R⁻¹ H)⁻¹ · Hᵀ R⁻¹ · (Yˢ − H X̄ᵇ) ]
//
// with B̂⁻¹ estimated by the localized modified Cholesky decomposition
// (P-EnKF's estimator, refs [23][24]) and the SPD solve done by Cholesky.
// P projects the expansion onto the target rectangle (never materialized,
// exactly as §2.2 notes).
//
// Every implementation in this library — serial reference, L-EnKF,
// P-EnKF, S-EnKF — calls this one kernel with identical inputs, which is
// why their analyses agree bit-for-bit (the correctness gate for the
// performance work).
//
// Execution model (DESIGN.md §15): all temporaries come from a
// LocalAnalysisWorkspace, the observation localization comes from the
// process-wide cache (obs/local_obs_cache.hpp), and results are emitted
// three ways:
//   * local_analysis_scratch — arena-backed views, zero allocation in
//     steady state; what the hot paths consume.
//   * local_analysis_packed — projects straight into a Packer's payload
//     bytes, for callers whose next step is the wire.
//   * local_analysis (legacy overloads) — owning AnalysisResult, for the
//     serial reference and existing tests.
// All three run the same engine, so their values agree bit-for-bit with
// each other and with the pre-workspace implementation.
#pragma once

#include <span>
#include <vector>

#include "enkf/analysis_workspace.hpp"
#include "grid/decomposition.hpp"
#include "linalg/modified_cholesky.hpp"
#include "obs/local_obs.hpp"
#include "obs/perturbed.hpp"

namespace senkf::parcomm {
class Packer;
}  // namespace senkf::parcomm

namespace senkf::enkf {

using grid::Index;

/// Which analysis scheme the kernel runs on each expansion.
enum class AnalysisKind {
  /// Stochastic EnKF with the modified-Cholesky B̂⁻¹ estimator and
  /// perturbed observations — P-EnKF's scheme (refs [23][24]); the
  /// library default and the paper's eq. (6).
  kStochasticModifiedCholesky,
  /// Deterministic ensemble-transform analysis in ensemble space (the
  /// formulation §1 attributes to the L-EnKF family; LETKF-style).  The
  /// perturbed-observation matrix is ignored — the transform updates the
  /// mean and rotates the anomalies by the symmetric square root of the
  /// ensemble-space posterior covariance.
  kDeterministicTransform,
};

struct AnalysisOptions {
  AnalysisKind kind = AnalysisKind::kStochasticModifiedCholesky;
  grid::Halo halo;              ///< localization half-widths (ξ, η)
  double ridge = 1e-6;          ///< modified-Cholesky regression ridge
  bool skip_without_obs = true; ///< leave the background untouched when the
                                ///< expansion holds no observations
  /// Multiplicative covariance inflation λ ≥ 1: background anomalies are
  /// scaled by λ before the analysis (X ← x̄ + λ(X − x̄)).  Counteracts
  /// the spread collapse of small ensembles in cycled assimilation;
  /// λ = 1 disables it.
  double inflation = 1.0;
};

/// Result: the analysis restricted to the target rect, one patch per
/// member (same order as the inputs).
struct AnalysisResult {
  std::vector<grid::Patch> members;
  Index local_observations = 0;  ///< m̄: observations used
};

/// Zero-allocation result: one view per member over storage owned by the
/// workspace that produced it.  Valid until that workspace is next used
/// (its reset() rewinds the arena the values live in).
struct AnalysisView {
  std::span<const grid::PatchView> members;
  Index local_observations = 0;  ///< m̄: observations used
};

/// Runs equation (6) with every temporary drawn from `workspace`
/// (reset() is called on entry — results of the previous call die).
/// `background` members may sit on any rect *containing* `expansion`
/// (the kernel gathers the expansion window in place, so callers never
/// extract an intermediate slab); `target` must lie inside the
/// expansion.  `observations` / `perturbed` are the *global* observation
/// set and Yˢ matrix — localization happens here, served from the
/// process-wide cache.
AnalysisView local_analysis_scratch(std::span<const grid::PatchView> background,
                                    grid::Rect expansion, grid::Rect target,
                                    const obs::ObservationSet& observations,
                                    const linalg::Matrix& perturbed,
                                    const AnalysisOptions& options,
                                    LocalAnalysisWorkspace& workspace);

/// Same analysis, emitted straight onto the wire: for each member k the
/// sequence [u64 member_ids[k]][patch block over `target`] is appended
/// to `out`, the projection writing into the payload bytes in place.
/// Byte-identical to pack_patch of the legacy result's patches.
void local_analysis_packed(std::span<const grid::PatchView> background,
                           grid::Rect expansion, grid::Rect target,
                           const obs::ObservationSet& observations,
                           const linalg::Matrix& perturbed,
                           const AnalysisOptions& options,
                           std::span<const Index> member_ids,
                           LocalAnalysisWorkspace& workspace,
                           parcomm::Packer& out);

/// Legacy owning entry point (members must all sit exactly on the
/// expansion rect, as before).  Runs on this thread's pooled workspace.
AnalysisResult local_analysis(std::span<const grid::PatchView> background,
                              grid::Rect target,
                              const obs::ObservationSet& observations,
                              const linalg::Matrix& perturbed,
                              const AnalysisOptions& options);

/// Adapter for callers holding owning Patches; the kernel itself only
/// reads, so it runs on views built in the workspace arena (no per-call
/// heap vector).
AnalysisResult local_analysis(const std::vector<grid::Patch>& background,
                              grid::Rect target,
                              const obs::ObservationSet& observations,
                              const linalg::Matrix& perturbed,
                              const AnalysisOptions& options);

/// The localized predecessor oracle used for B̂⁻¹: predecessors of a point
/// are the earlier points (row-major order within the expansion) whose
/// offsets are within (ξ, η) — the paper's radius-of-influence
/// neighbourhood transported to the Bickel–Levina ordering.
linalg::PredecessorFn expansion_predecessors(grid::Rect expansion,
                                             grid::Halo halo);

/// Allocation-free variant: writes each predecessor set into the scratch
/// arena the estimator hands it (released by the estimator's per-row
/// rewind).  Same sets in the same order as expansion_predecessors.
class ExpansionPredecessorOracle final : public linalg::PredecessorOracle {
 public:
  ExpansionPredecessorOracle(grid::Rect expansion, grid::Halo halo)
      : expansion_(expansion), halo_(halo) {}

  std::span<const linalg::Index> predecessors(
      linalg::Index i, support::Arena& scratch) override;

 private:
  grid::Rect expansion_;
  grid::Halo halo_;
};

}  // namespace senkf::enkf
