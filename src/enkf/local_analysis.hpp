// The local analysis kernel — paper equation (6).
//
// Given the background ensemble restricted to an expansion D̄ (one Patch
// per member), the observations localized to D̄ and the member-wise
// perturbed observations Yˢ, the kernel computes
//
//   Xᵃ = P · [ X̄ᵇ + (B̂⁻¹ + Hᵀ R⁻¹ H)⁻¹ · Hᵀ R⁻¹ · (Yˢ − H X̄ᵇ) ]
//
// with B̂⁻¹ estimated by the localized modified Cholesky decomposition
// (P-EnKF's estimator, refs [23][24]) and the SPD solve done by Cholesky.
// P projects the expansion onto the target rectangle (never materialized,
// exactly as §2.2 notes).
//
// Every implementation in this library — serial reference, L-EnKF,
// P-EnKF, S-EnKF — calls this one kernel with identical inputs, which is
// why their analyses agree bit-for-bit (the correctness gate for the
// performance work).
#pragma once

#include <span>
#include <vector>

#include "grid/decomposition.hpp"
#include "linalg/modified_cholesky.hpp"
#include "obs/local_obs.hpp"
#include "obs/perturbed.hpp"

namespace senkf::enkf {

using grid::Index;

/// Which analysis scheme the kernel runs on each expansion.
enum class AnalysisKind {
  /// Stochastic EnKF with the modified-Cholesky B̂⁻¹ estimator and
  /// perturbed observations — P-EnKF's scheme (refs [23][24]); the
  /// library default and the paper's eq. (6).
  kStochasticModifiedCholesky,
  /// Deterministic ensemble-transform analysis in ensemble space (the
  /// formulation §1 attributes to the L-EnKF family; LETKF-style).  The
  /// perturbed-observation matrix is ignored — the transform updates the
  /// mean and rotates the anomalies by the symmetric square root of the
  /// ensemble-space posterior covariance.
  kDeterministicTransform,
};

struct AnalysisOptions {
  AnalysisKind kind = AnalysisKind::kStochasticModifiedCholesky;
  grid::Halo halo;              ///< localization half-widths (ξ, η)
  double ridge = 1e-6;          ///< modified-Cholesky regression ridge
  bool skip_without_obs = true; ///< leave the background untouched when the
                                ///< expansion holds no observations
  /// Multiplicative covariance inflation λ ≥ 1: background anomalies are
  /// scaled by λ before the analysis (X ← x̄ + λ(X − x̄)).  Counteracts
  /// the spread collapse of small ensembles in cycled assimilation;
  /// λ = 1 disables it.
  double inflation = 1.0;
};

/// Result: the analysis restricted to the target rect, one patch per
/// member (same order as the inputs).
struct AnalysisResult {
  std::vector<grid::Patch> members;
  Index local_observations = 0;  ///< m̄: observations used
};

/// Runs equation (6).
///
/// `background` — the ensemble on the expansion (all patches must share
/// `expansion` as their rect); `target` — the sub-domain / layer rectangle
/// to project onto (must lie inside the expansion); `observations` /
/// `perturbed` — the *global* observation set and Yˢ matrix (localization
/// happens here, so every caller localizes identically).
AnalysisResult local_analysis(std::span<const grid::PatchView> background,
                              grid::Rect target,
                              const obs::ObservationSet& observations,
                              const linalg::Matrix& perturbed,
                              const AnalysisOptions& options);

/// Adapter for callers holding owning Patches; the kernel itself only
/// reads, so it runs on views — S-EnKF feeds it spans aliasing message
/// payloads directly (no per-member materialization).
AnalysisResult local_analysis(const std::vector<grid::Patch>& background,
                              grid::Rect target,
                              const obs::ObservationSet& observations,
                              const linalg::Matrix& perturbed,
                              const AnalysisOptions& options);

/// The localized predecessor oracle used for B̂⁻¹: predecessors of a point
/// are the earlier points (row-major order within the expansion) whose
/// offsets are within (ξ, η) — the paper's radius-of-influence
/// neighbourhood transported to the Bickel–Levina ordering.
linalg::PredecessorFn expansion_predecessors(grid::Rect expansion,
                                             grid::Halo halo);

}  // namespace senkf::enkf
