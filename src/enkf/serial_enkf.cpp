#include "enkf/serial_enkf.hpp"

namespace senkf::enkf {

std::vector<grid::Field> serial_enkf(const EnsembleStore& store,
                                     const obs::ObservationSet& observations,
                                     const linalg::Matrix& perturbed,
                                     const EnkfRunConfig& config) {
  const grid::Decomposition decomposition(store.grid(), config.n_sdx,
                                          config.n_sdy,
                                          config.analysis.halo);
  SENKF_REQUIRE(decomposition.valid_layer_count(config.layers),
                "serial_enkf: L must divide the sub-domain row count");

  // Start from the background so skipped (observation-free) regions keep
  // their prior values.
  std::vector<grid::Field> analysis;
  analysis.reserve(store.members());
  for (Index k = 0; k < store.members(); ++k) {
    analysis.push_back(store.load_member(k));
  }

  for (const grid::SubdomainId id : decomposition.all_subdomains()) {
    for (Index l = 0; l < config.layers; ++l) {
      const grid::Rect target = decomposition.layer(id, l, config.layers);
      const grid::Rect expansion =
          decomposition.layer_expansion(id, l, config.layers);
      std::vector<grid::Patch> background;
      background.reserve(store.members());
      for (Index k = 0; k < store.members(); ++k) {
        background.push_back(store.load_member(k).extract(expansion));
      }
      AnalysisResult local = local_analysis(background, target, observations,
                                            perturbed, config.analysis);
      for (Index k = 0; k < store.members(); ++k) {
        analysis[k].insert(local.members[k]);
      }
    }
  }
  return analysis;
}

}  // namespace senkf::enkf
