// Serial reference EnKF.
//
// Runs the domain-localized analysis (eq. (6)) over every sub-domain —
// optionally split into L latitude layers — in a single thread with
// direct data access.  This is the *gold* result every parallel
// implementation must reproduce exactly: same decomposition, same layer
// split, same kernel, same perturbed observations ⇒ bit-identical
// analyses.
//
// With n_sdx = n_sdy = 1 and a halo covering the whole grid the local
// analysis degenerates to the global formulation (eq. (5)), which the
// tests use as an independent cross-check.
#pragma once

#include "enkf/ensemble_store.hpp"
#include "enkf/local_analysis.hpp"

namespace senkf::enkf {

struct EnkfRunConfig {
  Index n_sdx = 1;
  Index n_sdy = 1;
  Index layers = 1;  ///< L: latitude layers per sub-domain
  /// Per-rank analysis pool width for the parallel implementations that
  /// honour it (P-EnKF's update phase): independent layer analyses run
  /// concurrently, results are consumed in layer order, so any width is
  /// bit-identical.  0 = hardware concurrency capped at 8.  The serial
  /// reference ignores this knob and always runs single-threaded.
  Index analysis_threads = 0;
  AnalysisOptions analysis;
};

/// Full-field analysis ensemble, one Field per member.
std::vector<grid::Field> serial_enkf(const EnsembleStore& store,
                                     const obs::ObservationSet& observations,
                                     const linalg::Matrix& perturbed,
                                     const EnkfRunConfig& config);

}  // namespace senkf::enkf
