#include "enkf/faulty_store.hpp"

#include <string>

namespace senkf::enkf {

FaultyEnsembleStore::FaultyEnsembleStore(const EnsembleStore& base,
                                         pfs::FaultPlan plan)
    : base_(base), injector_(std::move(plan)) {}

void FaultyEnsembleStore::maybe_fail(Index k, std::uint64_t key,
                                     const char* op) const {
  if (injector_.is_dead(k)) {
    pfs::FaultMetrics& metrics = pfs::FaultMetrics::get();
    metrics.dead_reads.add(1);
    metrics.injected.add(1);
    throw pfs::PermanentReadError(std::string(op) + ": member " +
                                  std::to_string(k) +
                                  " is permanently unreadable");
  }
  if (injector_.next_read_fails(k, key)) {
    throw pfs::TransientReadError(std::string(op) + ": injected EIO on member " +
                                  std::to_string(k));
  }
}

// Access accounting stays on the wrapped store (the base methods call
// count_access themselves); the decorator only adds failures, so
// successful reads are counted exactly once and failed attempts appear
// under pfs.fault.* instead.

grid::Field FaultyEnsembleStore::load_member(Index k) const {
  maybe_fail(k, pfs::op_key(k, ~std::uint64_t{0}), "load_member");
  return base_.load_member(k);
}

grid::Patch FaultyEnsembleStore::read_block(Index k, grid::Rect rect) const {
  maybe_fail(k,
             pfs::op_key(pfs::op_key(rect.x.begin, rect.x.end),
                         pfs::op_key(rect.y.begin, rect.y.end)),
             "read_block");
  return base_.read_block(k, rect);
}

grid::Patch FaultyEnsembleStore::read_bar(Index k,
                                          grid::IndexRange rows) const {
  maybe_fail(k, pfs::op_key(rows.begin, rows.end), "read_bar");
  return base_.read_bar(k, rows);
}

}  // namespace senkf::enkf
