// The background-ensemble "file system" of the numeric plane.
//
// EnsembleStore is the reading interface every implementation consumes.
// It exposes exactly the two access patterns the paper analyses —
// rectangular *block* reads (one non-contiguous segment per latitude row,
// §4.1.1) and contiguous *bar* reads (one segment, §4.1.2) — and counts
// the segments each access touches, so tests can assert the O(n_y·n_sdx)
// vs O(n_sdy) seek behaviour claimed in §4.1.
//
// Two backends:
//  * MemoryEnsembleStore — members held in RAM; the default for tests and
//    the DES-calibration path;
//  * FileEnsembleStore (file_store.hpp) — members stored as real binary
//    files on disk, reads issued with real seeks.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "grid/field.hpp"
#include "grid/synthetic.hpp"

namespace senkf::enkf {

using grid::Index;

class EnsembleStore {
 public:
  virtual ~EnsembleStore() = default;

  virtual const grid::LatLonGrid& grid() const = 0;
  virtual Index members() const = 0;

  /// Reads the whole member (used to seed analysis fields and by the
  /// single-reader L-EnKF path); counted as one contiguous read.
  virtual grid::Field load_member(Index k) const = 0;

  /// Block read: extracts `rect` of member `k`; costs one segment per
  /// latitude row unless the rect spans the full grid width.
  virtual grid::Patch read_block(Index k, grid::Rect rect) const = 0;

  /// Bar read: full-width rows [rows.begin, rows.end) of member `k` in a
  /// single contiguous segment.
  virtual grid::Patch read_bar(Index k, grid::IndexRange rows) const = 0;

  /// Segment (disk addressing) counter across all reads; thread-safe.
  std::uint64_t segments_touched() const { return segments_.load(); }
  std::uint64_t reads_issued() const { return reads_.load(); }
  void reset_counters() const;

 protected:
  EnsembleStore() = default;
  // Copy/move carry the counter values (atomics are not copyable, so the
  // compiler cannot generate these).
  EnsembleStore(const EnsembleStore& other)
      : segments_(other.segments_.load()), reads_(other.reads_.load()) {}
  EnsembleStore& operator=(const EnsembleStore& other) {
    segments_.store(other.segments_.load());
    reads_.store(other.reads_.load());
    return *this;
  }

  /// Backends report each access here.
  void count_access(std::uint64_t segments) const;

  /// Shared segment-accounting rule for block reads.
  std::uint64_t block_segments(grid::Rect rect) const;

 private:
  mutable std::atomic<std::uint64_t> segments_{0};
  mutable std::atomic<std::uint64_t> reads_{0};
};

/// Members held in RAM (one flat latitude-row-major buffer each, exactly
/// the byte layout FileEnsembleStore persists).
class MemoryEnsembleStore final : public EnsembleStore {
 public:
  MemoryEnsembleStore(const grid::LatLonGrid& grid_def,
                      std::vector<grid::Field> members);

  /// Builds a synthetic scenario store.
  static MemoryEnsembleStore synthetic(const grid::LatLonGrid& grid_def,
                                       Index n_members, Rng& rng,
                                       double background_error = 0.5);

  const grid::LatLonGrid& grid() const override { return grid_; }
  Index members() const override { return members_.size(); }
  grid::Field load_member(Index k) const override;
  grid::Patch read_block(Index k, grid::Rect rect) const override;
  grid::Patch read_bar(Index k, grid::IndexRange rows) const override;

  /// Zero-copy access to a member (memory backend only).
  const grid::Field& member(Index k) const;

 private:
  grid::LatLonGrid grid_;
  std::vector<grid::Field> members_;
};

}  // namespace senkf::enkf
