// L-EnKF: the single-reader baseline (§3.1, refs [13][33]).
//
// One processor reads the background ensemble members one after another
// and scatters each rank's expansion patch serially; every rank then runs
// the same local analysis kernel and the results are gathered back.  The
// reading strategy is the performance defect the paper starts from; the
// numerics are identical to every other implementation.
#pragma once

#include "enkf/serial_enkf.hpp"

namespace senkf::enkf {

/// Runs L-EnKF on n_sdx × n_sdy thread-backed ranks and returns the
/// analysis ensemble (verified bit-identical to serial_enkf in tests).
std::vector<grid::Field> lenkf(const EnsembleStore& store,
                               const obs::ObservationSet& observations,
                               const linalg::Matrix& perturbed,
                               const EnkfRunConfig& config);

}  // namespace senkf::enkf
