// Assimilation quality diagnostics.
#pragma once

#include <vector>

#include "grid/field.hpp"

namespace senkf::enkf {

using grid::Index;

/// Mean over members of the field-vs-truth RMSE.
double ensemble_rmse(const std::vector<grid::Field>& members,
                     const grid::Field& truth);

/// Point-wise ensemble mean field.
grid::Field ensemble_mean_field(const std::vector<grid::Field>& members);

/// RMSE of the ensemble mean against the truth (the headline skill metric
/// of data assimilation).
double mean_field_rmse(const std::vector<grid::Field>& members,
                       const grid::Field& truth);

/// Largest |a − b| over members and points; 0 means bit-identical
/// ensembles (the cross-implementation equality gate).
double max_ensemble_difference(const std::vector<grid::Field>& a,
                               const std::vector<grid::Field>& b);

/// Ensemble spread: mean over points of the member standard deviation.
double ensemble_spread(const std::vector<grid::Field>& members);

}  // namespace senkf::enkf
