// Wire codec for grid patches used by every parcomm-based implementation.
//
// The wire format of one block is: 4 u64 rect bounds, then a u64 count,
// then `count` doubles (the same framing as Packer::put_span, so the body
// can be read back either as an owning vector or, zero-copy, as a
// grid::PatchView aliasing the payload bytes).  Every field is 8 bytes,
// so block bodies are always 8-byte aligned however blocks are
// concatenated — the alignment contract Unpacker::view<double>() relies
// on.
#pragma once

#include "grid/field.hpp"
#include "parcomm/wire.hpp"

namespace senkf::enkf {

/// The view type the message plane trades in (see grid/field.hpp).
using PatchView = grid::PatchView;

/// Appends rect + values to the packer.  Accepts a view, so owning
/// Patches flow in via the implicit conversion and payload-backed views
/// are re-packed without materializing.
void pack_patch(parcomm::Packer& packer, const PatchView& patch);

/// Packs the block `rect` straight from the field's row storage — the
/// zero-intermediate path for scattering bar slices: no `extract` Patch
/// is ever built, and the body is copied exactly once (field rows →
/// payload).
void pack_field_block(parcomm::Packer& packer, const grid::Field& field,
                      grid::Rect rect);

/// Same, packing the sub-rectangle `block` of `bar` straight from the
/// bar's row storage (`block` must lie inside the bar's rect).
void pack_patch_block(parcomm::Packer& packer, const PatchView& bar,
                      grid::Rect block);

/// Exact wire size in bytes of a packed block over `rect` — for
/// Packer::reserve so a message is built with zero reallocation.
std::size_t packed_patch_size(grid::Rect rect);

/// Writes the framing of a block over `rect` and returns the writable
/// body span (`rect.count()` doubles) for the caller to fill in place —
/// the zero-intermediate path for producers that *compute* the block
/// (analysis projection) rather than copy it.  The span is invalidated
/// by the next append to `packer`; the resulting bytes are identical to
/// pack_patch of a patch holding the same values.
std::span<double> pack_patch_slot(parcomm::Packer& packer, grid::Rect rect);

/// Reads back an owning Patch written by pack_patch/pack_field_block
/// (one copy-out).
grid::Patch unpack_patch(parcomm::Unpacker& unpacker);

/// Zero-copy read: returns a view aliasing the payload bytes in place.
/// Valid only while the payload lives — callers keep the SharedPayload
/// handle alongside the view (DESIGN.md §10).
PatchView unpack_patch_view(parcomm::Unpacker& unpacker);

}  // namespace senkf::enkf
