// Wire codec for grid::Patch used by every parcomm-based implementation.
#pragma once

#include "grid/field.hpp"
#include "parcomm/wire.hpp"

namespace senkf::enkf {

/// Appends rect + values to the packer.
void pack_patch(parcomm::Packer& packer, const grid::Patch& patch);

/// Reads back a patch written by pack_patch.
grid::Patch unpack_patch(parcomm::Unpacker& unpacker);

}  // namespace senkf::enkf
