#include "tuning/drift.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.hpp"

namespace senkf::tuning {

namespace {

double rel_drift(double measured, double predicted) {
  if (predicted <= 0.0) return 0.0;
  return (measured - predicted) / predicted;
}

std::int64_t to_milli(double rel) {
  const double clamped = std::clamp(rel * 1e3, -1e9, 1e9);
  return static_cast<std::int64_t>(std::llround(clamped));
}

}  // namespace

PhaseDrift model_drift(const CostModel& model, const vcluster::SenkfParams& p,
                       double measured_read_s, double measured_comm_s,
                       double measured_comp_s) {
  PhaseDrift drift;
  drift.measured_read_s = measured_read_s;
  drift.measured_comm_s = measured_comm_s;
  drift.measured_comp_s = measured_comp_s;
  drift.predicted_read_s = model.t_read(p);
  drift.predicted_comm_s = model.t_comm(p);
  drift.predicted_comp_s = model.t_comp(p);
  drift.read = rel_drift(measured_read_s, drift.predicted_read_s);
  drift.comm = rel_drift(measured_comm_s, drift.predicted_comm_s);
  drift.comp = rel_drift(measured_comp_s, drift.predicted_comp_s);
  return drift;
}

PhaseDrift record_model_drift(const CostModel& model,
                              const vcluster::SenkfParams& p,
                              double measured_read_s, double measured_comm_s,
                              double measured_comp_s) {
  const PhaseDrift drift = model_drift(model, p, measured_read_s,
                                       measured_comm_s, measured_comp_s);
  auto& registry = telemetry::Registry::global();
  registry.gauge("model.drift.read").set(to_milli(drift.read));
  registry.gauge("model.drift.comm").set(to_milli(drift.comm));
  registry.gauge("model.drift.comp").set(to_milli(drift.comp));
  return drift;
}

DriftTrend fit_trend(const std::vector<telemetry::SeriesPoint>& points) {
  DriftTrend trend;
  trend.points = points.size();
  if (points.empty()) return trend;
  trend.latest = points.back().value;
  double sum = 0.0;
  for (const telemetry::SeriesPoint& p : points) sum += p.value;
  trend.mean = sum / static_cast<double>(points.size());
  if (points.size() < 2) return trend;
  // Ordinary least squares on (seconds since the first point, value);
  // anchoring at t0 keeps the normal equations well conditioned even
  // though t_ns is a large monotonic count.
  const double t0 = static_cast<double>(points.front().t_ns);
  double st = 0.0, sv = 0.0, stt = 0.0, stv = 0.0;
  for (const telemetry::SeriesPoint& p : points) {
    const double t = (static_cast<double>(p.t_ns) - t0) / 1e9;
    st += t;
    sv += p.value;
    stt += t * t;
    stv += t * p.value;
  }
  const double n = static_cast<double>(points.size());
  const double denom = n * stt - st * st;
  if (denom > 0.0) trend.slope_per_s = (n * stv - st * sv) / denom;
  return trend;
}

DriftTrend drift_trend(const std::string& phase) {
  return fit_trend(
      telemetry::TimeSeriesRecorder::global().series("model.drift." + phase));
}

}  // namespace senkf::tuning
