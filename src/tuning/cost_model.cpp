#include "tuning/cost_model.hpp"

#include <cmath>

#include "net/net.hpp"

namespace senkf::tuning {

namespace {
/// Tree-depth log factor, floored at 1 (see the header's rationale).
double log_factor(std::uint64_t n) {
  SENKF_REQUIRE(n > 0, "CostModel: log factor of 0");
  const int depth = net::Net::log2_ceil(static_cast<int>(n));
  return depth < 1 ? 1.0 : static_cast<double>(depth);
}
}  // namespace

CostModelParams params_from(const vcluster::MachineConfig& machine,
                            const vcluster::SimWorkload& workload) {
  CostModelParams params;
  params.members = workload.members;
  params.nx = workload.nx;
  params.ny = workload.ny;
  params.a = machine.net.alpha;
  params.b = machine.net.beta;
  params.c = machine.update_cost_per_point_s;
  params.analysis_speedup = machine.analysis_speedup;
  params.transient_read_p = machine.pfs.faults.transient_p;
  params.theta = 1.0 / machine.pfs.ost.stream_bandwidth;
  params.h = workload.point_bytes();
  params.xi = workload.halo_xi;
  params.eta = workload.halo_eta;
  return params;
}

CostModel::CostModel(const CostModelParams& params) : params_(params) {
  SENKF_REQUIRE(params.members > 0 && params.nx > 0 && params.ny > 0,
                "CostModel: workload dimensions must be positive");
  SENKF_REQUIRE(params.a >= 0 && params.b >= 0 && params.c > 0 &&
                    params.theta > 0 && params.h > 0,
                "CostModel: cost constants must be positive");
  SENKF_REQUIRE(params.analysis_speedup > 0,
                "CostModel: analysis_speedup must be positive");
  SENKF_REQUIRE(params.transient_read_p >= 0.0 && params.transient_read_p < 1.0,
                "CostModel: transient_read_p must be in [0, 1)");
}

double CostModel::stage_rows(const vcluster::SenkfParams& p) const {
  return static_cast<double>(params_.ny) /
             (static_cast<double>(p.n_sdy) * static_cast<double>(p.layers)) +
         2.0 * static_cast<double>(params_.eta);
}

bool CostModel::feasible(const vcluster::SenkfParams& p) const {
  if (p.n_sdx == 0 || p.n_sdy == 0 || p.layers == 0 || p.n_cg == 0) {
    return false;
  }
  if (params_.nx % p.n_sdx != 0) return false;
  if (params_.ny % p.n_sdy != 0) return false;
  if (params_.members % p.n_cg != 0) return false;
  if ((params_.ny / p.n_sdy) % p.layers != 0) return false;
  return true;
}

double CostModel::t_read(const vcluster::SenkfParams& p) const {
  SENKF_REQUIRE(feasible(p), "CostModel::t_read: infeasible parameters");
  const double files_per_group = static_cast<double>(params_.members) /
                                 static_cast<double>(p.n_cg);
  // Expected attempts per read under transient faults: geometric with
  // success probability 1−p (see CostModelParams::transient_read_p).
  const double retry_inflation = 1.0 / (1.0 - params_.transient_read_p);
  return stage_rows(p) * static_cast<double>(params_.nx) * params_.h *
         files_per_group * params_.theta * retry_inflation *
         log_factor(p.n_cg * p.n_sdy);
}

double CostModel::t_comm(const vcluster::SenkfParams& p) const {
  SENKF_REQUIRE(feasible(p), "CostModel::t_comm: infeasible parameters");
  const double files_per_group = static_cast<double>(params_.members) /
                                 static_cast<double>(p.n_cg);
  const double block_cols = static_cast<double>(params_.nx) /
                                static_cast<double>(p.n_sdx) +
                            2.0 * static_cast<double>(params_.xi);
  const double message_bytes =
      stage_rows(p) * block_cols * files_per_group * params_.h;
  return static_cast<double>(p.n_sdx) * log_factor(p.n_cg + 1) *
         (params_.a + params_.b * message_bytes);
}

double CostModel::t_comp(const vcluster::SenkfParams& p) const {
  SENKF_REQUIRE(feasible(p), "CostModel::t_comp: infeasible parameters");
  return params_.c / params_.analysis_speedup *
         (static_cast<double>(params_.ny) /
          (static_cast<double>(p.n_sdy) * static_cast<double>(p.layers))) *
         (static_cast<double>(params_.nx) / static_cast<double>(p.n_sdx));
}

double CostModel::t1(const vcluster::SenkfParams& p) const {
  return t_read(p) + t_comm(p);
}

double CostModel::t_total(const vcluster::SenkfParams& p) const {
  return t1(p) + static_cast<double>(p.layers) * t_comp(p);
}

double CostModel::t_pipeline(const vcluster::SenkfParams& p) const {
  const double stage_io = t1(p);
  const double stage_comp = t_comp(p);
  return stage_io +
         static_cast<double>(p.layers - 1) * std::max(stage_comp, stage_io) +
         stage_comp;
}

double predict_runtime(const CostModel& model, const vcluster::SenkfParams& p,
                       std::uint64_t cycles) {
  SENKF_REQUIRE(cycles > 0, "predict_runtime: need at least one cycle");
  return model.t_pipeline(p) * static_cast<double>(cycles);
}

PhaseDeadlines phase_deadlines(const CostModel& model,
                               const vcluster::SenkfParams& p,
                               double floor_s) {
  SENKF_REQUIRE(floor_s >= 0.0, "phase_deadlines: need floor_s >= 0");
  PhaseDeadlines d;
  d.read_s = std::max(model.t_read(p), floor_s);
  d.comm_s = std::max(model.t_comm(p), floor_s);
  d.comp_s = std::max(model.t_comp(p), floor_s);
  d.stage_s = std::max(model.t1(p) + model.t_comp(p), floor_s);
  d.cycle_s = std::max(model.t_pipeline(p), floor_s);
  return d;
}

}  // namespace senkf::tuning
