#include "tuning/auto_tune.hpp"

#include <algorithm>

namespace senkf::tuning {

namespace {

std::vector<std::uint64_t> divisors(std::uint64_t n) {
  std::vector<std::uint64_t> result;
  for (std::uint64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      result.push_back(d);
      if (d != n / d) result.push_back(n / d);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

std::optional<SolverResult> solve_optimization(const CostModel& model,
                                               std::uint64_t c1,
                                               std::uint64_t c2) {
  SENKF_REQUIRE(c1 > 0 && c2 > 0, "Algorithm 1: budgets must be positive");
  const CostModelParams& mp = model.params();

  std::optional<SolverResult> best;
  // Algorithm 1's loop "for j = 1 to c1", iterating only the j that pass
  // its divisibility filters (j | c1, j | c2, j | n_y) — identical output,
  // divisor-enumeration complexity.
  for (const std::uint64_t j : divisors(c1)) {
    if (c2 % j != 0 || mp.ny % j != 0) continue;
    const std::uint64_t k = c1 / j;  // n_cg
    const std::uint64_t i = c2 / j;  // n_sdx
    if (mp.nx % i != 0 || mp.members % k != 0) continue;
    for (const std::uint64_t l : divisors(mp.ny / j)) {
      vcluster::SenkfParams p;
      p.n_sdx = i;
      p.n_sdy = j;
      p.layers = l;
      p.n_cg = k;
      const double t = model.t1(p);
      if (!best || t < best->t1) best = SolverResult{p, t};
    }
  }
  return best;
}

namespace {

/// Replaces a point's layer count by the pipeline-optimal one (the T₁
/// objective alone always prefers maximal L; see CostModel::t_pipeline).
vcluster::SenkfParams with_operating_layers(const CostModel& model,
                                            vcluster::SenkfParams params) {
  double best_total = -1.0;
  std::uint64_t best_layers = params.layers;
  for (const std::uint64_t layers :
       divisors(model.params().ny / params.n_sdy)) {
    vcluster::SenkfParams candidate = params;
    candidate.layers = layers;
    const double total = model.t_pipeline(candidate);
    if (best_total < 0.0 || total < best_total) {
      best_total = total;
      best_layers = layers;
    }
  }
  params.layers = best_layers;
  return params;
}

}  // namespace

std::vector<EconomicPoint> improvement_staircase(const CostModel& model,
                                                 std::uint64_t c2,
                                                 std::uint64_t c1_max) {
  const CostModelParams& mp = model.params();

  // Candidate C₁ values: n_cg · n_sdy with n_sdy | gcd-compatible splits.
  // Every other value makes Algorithm 1 return "no solution" and is
  // skipped by the published scan too.
  std::vector<std::uint64_t> candidates;
  for (const std::uint64_t j : divisors(c2)) {
    if (mp.ny % j != 0 || mp.nx % (c2 / j) != 0) continue;
    for (const std::uint64_t k : divisors(mp.members)) {
      const std::uint64_t c1 = j * k;
      if (c1 >= 1 && c1 <= c1_max) candidates.push_back(c1);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Algorithm 2, lines 6–18: walk C₁ upward, record strict improvements.
  // Each point is taken at its *operating* layer count (pipeline-optimal
  // L for that split), so the staircase describes configurations S-EnKF
  // would actually run.
  std::vector<EconomicPoint> staircase;
  for (const std::uint64_t c1 : candidates) {
    const auto solved = solve_optimization(model, c1, c2);
    if (!solved) continue;
    const vcluster::SenkfParams operating =
        with_operating_layers(model, solved->params);
    const double t1 = model.t1(operating);
    if (staircase.empty() || t1 < staircase.back().t1) {
      staircase.push_back(EconomicPoint{c1, t1, operating});
    }
  }
  return staircase;
}

std::size_t most_economic_index(const std::vector<EconomicPoint>& staircase,
                                double epsilon) {
  SENKF_REQUIRE(!staircase.empty(),
                "most_economic_index: empty staircase");
  SENKF_REQUIRE(epsilon > 0.0, "most_economic_index: epsilon must be > 0");
  // Criterion (13)-(14): choose the first m whose earnings rate drops
  // below ε; if spending more keeps paying, take the last point.
  for (std::size_t m = 0; m + 1 < staircase.size(); ++m) {
    const double gain = staircase[m].t1 - staircase[m + 1].t1;
    const double cost = static_cast<double>(staircase[m + 1].c1) -
                        static_cast<double>(staircase[m].c1);
    if (gain / cost < epsilon) return m;
  }
  return staircase.size() - 1;
}

AutoTuneResult auto_tune(const CostModel& model, std::uint64_t n_procs,
                         double epsilon) {
  SENKF_REQUIRE(n_procs >= 2, "auto_tune: need at least 2 processors");
  const CostModelParams& mp = model.params();

  // Feasible computation budgets: C₂ = n_sdx · n_sdy with n_sdx | n_x and
  // n_sdy | n_y (the dense 1..n_p scan visits these and skips the rest).
  std::vector<std::uint64_t> budgets;
  for (const std::uint64_t sdx : divisors(mp.nx)) {
    for (const std::uint64_t sdy : divisors(mp.ny)) {
      const std::uint64_t c2 = sdx * sdy;
      if (c2 >= 1 && c2 < n_procs) budgets.push_back(c2);
    }
  }
  std::sort(budgets.begin(), budgets.end());
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());

  std::optional<AutoTuneResult> best;
  for (const std::uint64_t c2 : budgets) {
    const auto staircase = improvement_staircase(model, c2, n_procs - c2);
    if (staircase.empty()) continue;
    const EconomicPoint& economic =
        staircase[most_economic_index(staircase, epsilon)];

    // Staircase points already carry their operating layer count.
    const double total = model.t_pipeline(economic.params);
    if (!best || total < best->t_total) {
      best = AutoTuneResult{economic.params, economic.c1, c2,
                            economic.t1, total};
    }
  }
  SENKF_REQUIRE(best.has_value(),
                "auto_tune: no feasible configuration for this machine");
  return *best;
}

}  // namespace senkf::tuning
