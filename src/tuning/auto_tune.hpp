// Auto-tuning of the multi-stage computation parameters (paper §4.4).
//
// Algorithm 1 ("Solver for Optimization Model") minimizes
// T₁ = T_read + T_comm subject to n_cg·n_sdy = C₁, n_sdx·n_sdy = C₂ and
// the divisibility constraints, by exhaustive search — implemented
// verbatim, including the traversal order.
//
// Algorithm 2 ("Auto-Tuning for Optimal Parameters") sweeps the
// computation budget C₂, and for each budget walks C₁ upward recording
// every strict improvement of T₁; the earnings rate (13)
//     r_m = (t₁^m − t₁^{m+1}) / (c₁^{m+1} − c₁^m)
// stops the walk at the most economic C₁ via criterion (14) r_m < ε.
// The best (C₂, C₁) pair under T_total (10) wins.
//
// Deviations from the paper's pseudocode, both documented in DESIGN.md:
//  * Algorithm 2's line 26 reads "T_min < T_total ⇒ update", which would
//    select the *worst* configuration; we implement the evident intent
//    (keep the minimum).
//  * C₁ and C₂ are enumerated over the feasible lattice only (values for
//    which some divisibility-satisfying split exists).  Infeasible values
//    make Algorithm 1 return "no solution" and are skipped by the
//    published pseudocode anyway, so the output is identical — this is
//    purely a complexity fix (the dense 1..n_p × 1..n_p scan is O(n_p²)
//    Algorithm-1 invocations).
#pragma once

#include <optional>
#include <vector>

#include "tuning/cost_model.hpp"

namespace senkf::tuning {

/// Outcome of Algorithm 1 for fixed budgets (C₁, C₂).
struct SolverResult {
  vcluster::SenkfParams params;
  double t1 = 0.0;
};

/// Algorithm 1: exhaustive minimization of T₁ under n_cg·n_sdy = c1 and
/// n_sdx·n_sdy = c2.  Returns nullopt when no feasible split exists.
std::optional<SolverResult> solve_optimization(const CostModel& model,
                                               std::uint64_t c1,
                                               std::uint64_t c2);

/// One recorded point of Algorithm 2's C₁ walk (the staircase of strict
/// T₁ improvements used by the earnings-rate rule).
struct EconomicPoint {
  std::uint64_t c1 = 0;
  double t1 = 0.0;
  vcluster::SenkfParams params;
};

/// The staircase of strict T₁ improvements for a fixed C₂, walking C₁
/// from 1 to c1_max (Algorithm 2, lines 6–18).
std::vector<EconomicPoint> improvement_staircase(const CostModel& model,
                                                 std::uint64_t c2,
                                                 std::uint64_t c1_max);

/// Applies the earnings-rate criterion (13)–(14) to a staircase; returns
/// the index of the most economic point (first m with r_m < ε, else the
/// last point).
std::size_t most_economic_index(const std::vector<EconomicPoint>& staircase,
                                double epsilon);

/// Final auto-tuning outcome.
struct AutoTuneResult {
  vcluster::SenkfParams params;
  std::uint64_t c1 = 0;      ///< I/O processors (n_cg · n_sdy)
  std::uint64_t c2 = 0;      ///< computation processors (n_sdx · n_sdy)
  double t1 = 0.0;           ///< modelled T_read + T_comm (per stage)
  double t_total = 0.0;      ///< modelled pipeline-aware total (== eq. (10)
                             ///< wherever the overlap assumption holds)
};

/// Algorithm 2: chooses C₂ ≤ n_p, the economic C₁ ≤ n_p − C₂ and the
/// optimal (n_sdx, n_sdy, L, n_cg).  Throws if no feasible configuration
/// exists for any budget.
AutoTuneResult auto_tune(const CostModel& model, std::uint64_t n_procs,
                         double epsilon);

}  // namespace senkf::tuning
