// Cost models of the multi-stage computation (paper §4.3, Table 1).
//
// Equations (7)–(10) are implemented verbatim:
//
//   T_read  = ((n_y/(n_sdy·L) + 2η) · n_x · h · N/n_cg · θ) · log(n_cg·n_sdy)
//   T_comm  = n_sdx · log(n_cg + 1)
//               · (a + b · (n_y/(n_sdy·L) + 2η) · (n_x/n_sdx + 2ξ)
//                        · N/n_cg · h)
//   T_comp  = c · n_y/(n_sdy·L) · n_x/n_sdx
//   T_total = T_read + T_comm + L · T_comp
//
// `log` is the base-2 tree depth of the classic collective models the
// paper extends, floored at 1 so a single-reader configuration keeps its
// physical cost (log 1 = 0 would predict free reads; the paper's
// experiments never touch that corner).
#pragma once

#include <cstdint>

#include "vcluster/machine.hpp"
#include "vcluster/workflows.hpp"

namespace senkf::tuning {

/// Table 1's variables, bundled.
struct CostModelParams {
  std::uint64_t members = 120;  ///< N
  std::uint64_t nx = 3600;      ///< grid points along longitude
  std::uint64_t ny = 1800;      ///< grid points along latitude
  double a = 2e-6;              ///< startup time per message (s)
  double b = 1e-10;             ///< transfer time per byte (s)
  double c = 1.0e-3;            ///< computation cost per grid point (s),
                                ///< calibrated on the scalar kernels
  /// SIMD + analysis-pool speedup dividing T_comp (eq. (9)): the faster
  /// the compute phase, the earlier the pipeline leaves the
  /// compute-bound regime where reads and communication hide for free —
  /// which shifts the auto-tuner toward more I/O ranks.  1.0 = the
  /// scalar baseline `c` was calibrated on.
  double analysis_speedup = 1.0;
  /// Probability a bar read draws a transient fault and must be retried
  /// (pfs::FaultPlan::transient_p).  Each read costs 1/(1−p) expected
  /// attempts (geometric retries), so T_read (eq. (7)) is scaled by that
  /// factor — a degraded file system shifts the tuner toward more I/O
  /// ranks exactly as a slower disk would.  0 = the paper's fault-free
  /// machine; backoff sleeps are not modelled (they are microseconds
  /// against millisecond reads).
  double transient_read_p = 0.0;
  double theta = 2.5e-9;        ///< disk-to-memory transfer time per byte (s)
  double h = 8.0;               ///< bytes per grid point
  std::uint64_t xi = 4;         ///< ξ
  std::uint64_t eta = 2;        ///< η
};

/// Derives the model constants from a simulated machine + workload, so the
/// model curve and the DES "test data" describe the same system (Fig. 12).
CostModelParams params_from(const vcluster::MachineConfig& machine,
                            const vcluster::SimWorkload& workload);

class CostModel {
 public:
  explicit CostModel(const CostModelParams& params);

  const CostModelParams& params() const { return params_; }

  /// Equation (7).
  double t_read(const vcluster::SenkfParams& p) const;

  /// Equation (8).
  double t_comm(const vcluster::SenkfParams& p) const;

  /// Equation (9): one stage of local analysis.
  double t_comp(const vcluster::SenkfParams& p) const;

  /// T₁ = T_read + T_comm — the objective of optimization problem (11).
  double t1(const vcluster::SenkfParams& p) const;

  /// Equation (10), verbatim: T₁ + L · T_comp.  Note that L · T_comp is
  /// constant in L, so under this objective alone larger L is always at
  /// least as good — the published formula assumes reading and
  /// communication always hide behind computation.
  double t_total(const vcluster::SenkfParams& p) const;

  /// Pipeline-aware total used by the auto-tuner:
  ///
  ///   T₁ + (L − 1) · max(T_comp, T_read + T_comm) + T_comp
  ///
  /// — prologue, steady-state pipeline, final drain.  Wherever the
  /// paper's overlap assumption holds (per-stage read+comm ≤ per-stage
  /// compute) the max resolves to T_comp and this is *identical* to
  /// equation (10); outside that regime it charges the I/O-bound stages
  /// the published formula ignores (see DESIGN.md).
  double t_pipeline(const vcluster::SenkfParams& p) const;

  /// True if `p` satisfies every divisibility constraint of Algorithm 1
  /// (n_sdy | n_y, n_sdx | n_x, n_cg | N, L | n_y/n_sdy).
  bool feasible(const vcluster::SenkfParams& p) const;

 private:
  double stage_rows(const vcluster::SenkfParams& p) const;

  CostModelParams params_;
};

/// Predicted wall-clock of `cycles` back-to-back assimilation cycles under
/// configuration `p`: the pipeline-aware per-cycle total (prologue, steady
/// state, drain) times the cycle count.  The service plane's admission
/// control and deadline-aware policy query this (DESIGN.md §14) — it is
/// deliberately the same quantity the auto-tuner minimizes, so a job's
/// predicted runtime and its tuned configuration always agree.
double predict_runtime(const CostModel& model, const vcluster::SenkfParams& p,
                       std::uint64_t cycles = 1);

/// Per-phase stall deadlines for the liveops watchdog (DESIGN.md §16):
/// the cost model's per-stage predictions, floored at `floor_s` so the
/// sub-millisecond predictions of test-sized grids don't fire on
/// ordinary scheduling noise.  The watchdog multiplies its
/// SENKF_WATCHDOG safety scale on top at arm time — these are the raw
/// "should have finished by now" estimates.
struct PhaseDeadlines {
  double read_s = 0.0;   ///< one rank's bar reads for one stage (eq. (7))
  double comm_s = 0.0;   ///< one stage's scatter/gather (eq. (8))
  double comp_s = 0.0;   ///< one stage's local analysis (eq. (9))
  double stage_s = 0.0;  ///< one full stage end-to-end (read+comm+comp)
  double cycle_s = 0.0;  ///< whole cycle (pipeline-aware total)
};
PhaseDeadlines phase_deadlines(const CostModel& model,
                               const vcluster::SenkfParams& p,
                               double floor_s = 0.05);

}  // namespace senkf::tuning
