// Live cost-model drift (DESIGN.md §11): compares measured per-rank
// per-stage phase times against equations (7)–(9) and publishes the
// relative errors as `model.drift.{read,comm,comp}` gauges — the
// empirical feedback signal a future auto-tuner recalibration loop
// (Algorithms 1–2) consumes.  Unlike bench/fig09_measured_vs_model, no
// calibration happens here: the drift *is* the calibration residual.
#pragma once

#include <string>
#include <vector>

#include "telemetry/timeseries.hpp"
#include "tuning/cost_model.hpp"

namespace senkf::tuning {

struct PhaseDrift {
  // Per I/O rank (read/comm) or computation rank (comp), per stage,
  // seconds — the model's native normalization (see fig09).
  double measured_read_s = 0.0;
  double measured_comm_s = 0.0;
  double measured_comp_s = 0.0;
  double predicted_read_s = 0.0;
  double predicted_comm_s = 0.0;
  double predicted_comp_s = 0.0;
  /// (measured − predicted) / predicted; 0 when the model predicts 0.
  /// Positive = reality slower than the model.
  double read = 0.0;
  double comm = 0.0;
  double comp = 0.0;
};

/// Pure computation: evaluates the model at `p` and fills the drift.
PhaseDrift model_drift(const CostModel& model, const vcluster::SenkfParams& p,
                       double measured_read_s, double measured_comm_s,
                       double measured_comp_s);

/// model_drift + publishes `model.drift.{read,comm,comp}` gauges into the
/// global registry, in milli-units (gauge 250 = +25% drift, clamped to
/// ±10^9 so a cold model can't overflow the int64).
PhaseDrift record_model_drift(const CostModel& model,
                              const vcluster::SenkfParams& p,
                              double measured_read_s, double measured_comm_s,
                              double measured_comp_s);

/// Trend of one drift gauge over its sampled history (DESIGN.md §13):
/// the time-series recorder turns the point-in-time drift gauges into a
/// per-cycle trend, which is what a recalibration loop actually needs —
/// a model that is 20% off but stable is calibratable, one whose drift
/// grows every cycle is not.
struct DriftTrend {
  std::size_t points = 0;
  double latest = 0.0;       ///< newest sampled value (milli-units)
  double mean = 0.0;         ///< mean over the recorded window
  double slope_per_s = 0.0;  ///< least-squares slope, milli-units per
                             ///< second; 0 with fewer than 2 points
};

/// Least-squares fit over a recorded series (helper shared with tests).
DriftTrend fit_trend(const std::vector<telemetry::SeriesPoint>& points);

/// Trend of `model.drift.<phase>` (phase in {"read", "comm", "comp"})
/// read from the global TimeSeriesRecorder.  Zeroed result when the
/// gauge was never sampled (sampling off and no cycle boundary hit).
DriftTrend drift_trend(const std::string& phase);

}  // namespace senkf::tuning
