#include "linalg/cholesky.hpp"

#include <cmath>
#include <string>

#include "linalg/kernels/dispatch.hpp"

namespace senkf::linalg {

namespace {

// The standalone triangular solves promise NumericError on a zero
// diagonal; the kernels divide unconditionally (factors from potrf are
// always positive), so check up front.
void require_nonzero_diagonal(const Matrix& l, const char* who) {
  for (Index i = 0; i < l.rows(); ++i) {
    if (l(i, i) == 0.0) {
      throw NumericError(std::string(who) + ": zero diagonal");
    }
  }
}

}  // namespace

CholeskyFactor::CholeskyFactor(const Matrix& a) {
  SENKF_REQUIRE(a.square(), "Cholesky: matrix must be square");
  l_ = Matrix(a.rows(), a.rows(), 0.0);
  cholesky_factor_into(a, l_);
}

void cholesky_factor_into(const Matrix& a, Matrix& l) {
  SENKF_REQUIRE(a.square(), "Cholesky: matrix must be square");
  const Index n = a.rows();
  SENKF_REQUIRE(l.rows() == n && l.cols() == n,
                "cholesky_factor_into: output shape mismatch");
  // Copy the lower triangle, zero the upper, and factor in place with
  // the blocked, ISA-dispatched potrf kernel.
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j <= i; ++j) l(i, j) = a(i, j);
    for (Index j = i + 1; j < n; ++j) l(i, j) = 0.0;
  }
  const std::ptrdiff_t pivot =
      kernels::active_kernels().potrf(n, l.data(), l.stride());
  if (pivot >= 0) {
    throw NumericError("Cholesky: matrix is not positive definite (pivot " +
                       std::to_string(pivot) + ")");
  }
}

void cholesky_solve_in_place(const Matrix& l, Matrix& x) {
  SENKF_REQUIRE(l.square() && x.rows() == l.rows(),
                "cholesky_solve_in_place: row mismatch");
  const auto& table = kernels::active_kernels();
  table.trsm_lln(l.rows(), x.cols(), l.data(), l.stride(), x.data(),
                 x.stride());
  table.trsm_llt(l.rows(), x.cols(), l.data(), l.stride(), x.data(),
                 x.stride());
}

void cholesky_solve_in_place(const Matrix& l, Vector& x) {
  SENKF_REQUIRE(l.square() && x.size() == l.rows(),
                "cholesky_solve_in_place: length mismatch");
  const auto& table = kernels::active_kernels();
  table.trsm_lln(l.rows(), 1, l.data(), l.stride(), x.data(), 1);
  table.trsm_llt(l.rows(), 1, l.data(), l.stride(), x.data(), 1);
}

Vector CholeskyFactor::solve(const Vector& b) const {
  SENKF_REQUIRE(b.size() == dim(), "Cholesky::solve: length mismatch");
  Vector x = b;
  const auto& table = kernels::active_kernels();
  table.trsm_lln(dim(), 1, l_.data(), l_.stride(), x.data(), 1);
  table.trsm_llt(dim(), 1, l_.data(), l_.stride(), x.data(), 1);
  return x;
}

Matrix CholeskyFactor::solve(const Matrix& b) const {
  SENKF_REQUIRE(b.rows() == dim(), "Cholesky::solve: row mismatch");
  Matrix x = b;
  const auto& table = kernels::active_kernels();
  table.trsm_lln(dim(), x.cols(), l_.data(), l_.stride(), x.data(),
                 x.stride());
  table.trsm_llt(dim(), x.cols(), l_.data(), l_.stride(), x.data(),
                 x.stride());
  return x;
}

double CholeskyFactor::log_determinant() const {
  double sum = 0.0;
  for (Index i = 0; i < dim(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

Matrix CholeskyFactor::inverse() const {
  return solve(Matrix::identity(dim()));
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  SENKF_REQUIRE(l.square() && l.rows() == b.size(),
                "solve_lower: shape mismatch");
  require_nonzero_diagonal(l, "solve_lower");
  Vector y = b;
  kernels::active_kernels().trsm_lln(l.rows(), 1, l.data(), l.stride(),
                                     y.data(), 1);
  return y;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& y) {
  SENKF_REQUIRE(l.square() && l.rows() == y.size(),
                "solve_lower_transposed: shape mismatch");
  require_nonzero_diagonal(l, "solve_lower_transposed");
  Vector x = y;
  kernels::active_kernels().trsm_llt(l.rows(), 1, l.data(), l.stride(),
                                     x.data(), 1);
  return x;
}

Vector solve_spd(const Matrix& a, const Vector& b) {
  return CholeskyFactor(a).solve(b);
}

Matrix solve_spd(const Matrix& a, const Matrix& b) {
  return CholeskyFactor(a).solve(b);
}

}  // namespace senkf::linalg
