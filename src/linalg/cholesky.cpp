#include "linalg/cholesky.hpp"

#include <cmath>

namespace senkf::linalg {

CholeskyFactor::CholeskyFactor(const Matrix& a) {
  SENKF_REQUIRE(a.square(), "Cholesky: matrix must be square");
  const Index n = a.rows();
  l_ = Matrix(n, n, 0.0);
  for (Index j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (Index k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > 0.0)) {
      throw NumericError("Cholesky: matrix is not positive definite (pivot " +
                         std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (Index i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (Index k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      l_(i, j) = sum / ljj;
    }
  }
}

Vector CholeskyFactor::solve(const Vector& b) const {
  SENKF_REQUIRE(b.size() == dim(), "Cholesky::solve: length mismatch");
  return solve_lower_transposed(l_, solve_lower(l_, b));
}

Matrix CholeskyFactor::solve(const Matrix& b) const {
  SENKF_REQUIRE(b.rows() == dim(), "Cholesky::solve: row mismatch");
  Matrix x(b.rows(), b.cols());
  for (Index j = 0; j < b.cols(); ++j) {
    x.set_column(j, solve(b.column(j)));
  }
  return x;
}

double CholeskyFactor::log_determinant() const {
  double sum = 0.0;
  for (Index i = 0; i < dim(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

Matrix CholeskyFactor::inverse() const {
  return solve(Matrix::identity(dim()));
}

Vector solve_lower(const Matrix& l, const Vector& b) {
  SENKF_REQUIRE(l.square() && l.rows() == b.size(),
                "solve_lower: shape mismatch");
  const Index n = b.size();
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    double sum = b[i];
    const double* li = l.data() + i * n;
    for (Index k = 0; k < i; ++k) sum -= li[k] * y[k];
    if (li[i] == 0.0) throw NumericError("solve_lower: zero diagonal");
    y[i] = sum / li[i];
  }
  return y;
}

Vector solve_lower_transposed(const Matrix& l, const Vector& y) {
  SENKF_REQUIRE(l.square() && l.rows() == y.size(),
                "solve_lower_transposed: shape mismatch");
  const Index n = y.size();
  Vector x(n);
  for (Index ip = n; ip-- > 0;) {
    double sum = y[ip];
    for (Index k = ip + 1; k < n; ++k) sum -= l(k, ip) * x[k];
    if (l(ip, ip) == 0.0) {
      throw NumericError("solve_lower_transposed: zero diagonal");
    }
    x[ip] = sum / l(ip, ip);
  }
  return x;
}

Vector solve_spd(const Matrix& a, const Vector& b) {
  return CholeskyFactor(a).solve(b);
}

Matrix solve_spd(const Matrix& a, const Matrix& b) {
  return CholeskyFactor(a).solve(b);
}

}  // namespace senkf::linalg
