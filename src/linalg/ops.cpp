#include "linalg/ops.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels/dispatch.hpp"

namespace senkf::linalg {

namespace {
void require_same_shape(const Matrix& a, const Matrix& b, const char* who) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw ShapeError(std::string(who) + ": shape mismatch");
  }
}
void require_same_size(const Vector& a, const Vector& b, const char* who) {
  if (a.size() != b.size()) {
    throw ShapeError(std::string(who) + ": length mismatch");
  }
}
}  // namespace

// The dense products route through the blocked micro-kernels selected at
// startup (linalg/kernels/dispatch.hpp).  No zero-skip branches here: they
// block vectorization and make the FP summation order data-dependent;
// sparsity is exploited only where the structure is explicit
// (sparse_lower.cpp).  Leading dimensions come from Matrix::stride(), so
// padded operands take the full-width SIMD path and compact ones fall
// back to scalar remainder loops with identical results.

void multiply_into(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.cols() != b.rows()) throw ShapeError("multiply: inner dim mismatch");
  SENKF_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
                "multiply_into: output shape mismatch");
  kernels::active_kernels().gemm_nn(a.rows(), b.cols(), a.cols(), a.data(),
                                    a.stride(), b.data(), b.stride(),
                                    c.data(), c.stride());
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw ShapeError("multiply: inner dim mismatch");
  Matrix c(a.rows(), b.cols());
  multiply_into(a, b, c);
  return c;
}

void multiply_at_b_into(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.rows() != b.rows()) {
    throw ShapeError("multiply_at_b: inner dim mismatch");
  }
  SENKF_REQUIRE(c.rows() == a.cols() && c.cols() == b.cols(),
                "multiply_at_b_into: output shape mismatch");
  kernels::active_kernels().gemm_tn(a.cols(), b.cols(), a.rows(), a.data(),
                                    a.stride(), b.data(), b.stride(),
                                    c.data(), c.stride());
}

Matrix multiply_at_b(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw ShapeError("multiply_at_b: inner dim mismatch");
  }
  Matrix c(a.cols(), b.cols());
  multiply_at_b_into(a, b, c);
  return c;
}

void multiply_a_bt_into(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.cols() != b.cols()) {
    throw ShapeError("multiply_a_bt: inner dim mismatch");
  }
  SENKF_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(),
                "multiply_a_bt_into: output shape mismatch");
  kernels::active_kernels().gemm_nt(a.rows(), b.rows(), a.cols(), a.data(),
                                    a.stride(), b.data(), b.stride(),
                                    c.data(), c.stride());
}

Matrix multiply_a_bt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    throw ShapeError("multiply_a_bt: inner dim mismatch");
  }
  Matrix c(a.rows(), b.rows());
  multiply_a_bt_into(a, b, c);
  return c;
}

void multiply_into(const Matrix& a, const Vector& x, Vector& y) {
  if (a.cols() != x.size()) throw ShapeError("multiply: Ax dim mismatch");
  SENKF_REQUIRE(y.size() == a.rows(), "multiply_into: output size mismatch");
  kernels::active_kernels().gemv_n(a.rows(), a.cols(), a.data(), a.stride(),
                                   x.data(), y.data());
}

Vector multiply(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size()) throw ShapeError("multiply: Ax dim mismatch");
  Vector y(a.rows());
  multiply_into(a, x, y);
  return y;
}

void multiply_at_into(const Matrix& a, const Vector& x, Vector& y) {
  if (a.rows() != x.size()) throw ShapeError("multiply_at: dim mismatch");
  SENKF_REQUIRE(y.size() == a.cols(),
                "multiply_at_into: output size mismatch");
  kernels::active_kernels().gemv_t(a.rows(), a.cols(), a.data(), a.stride(),
                                   x.data(), y.data());
}

Vector multiply_at(const Matrix& a, const Vector& x) {
  if (a.rows() != x.size()) throw ShapeError("multiply_at: dim mismatch");
  Vector y(a.cols());
  multiply_at_into(a, x, y);
  return y;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

void axpy(double alpha, const Matrix& b, Matrix& a) {
  require_same_shape(a, b, "axpy");
  const auto& table = kernels::active_kernels();
  if (a.stride() == b.stride()) {
    // Same layout: one flat sweep, pad included (both pads are zero, so
    // a_pad += alpha·0 keeps the pad-zero invariant).
    table.axpy(a.rows() * a.stride(), alpha, b.data(), a.data());
    return;
  }
  for (Index i = 0; i < a.rows(); ++i) {
    table.axpy(a.cols(), alpha, b.row(i).data(), a.row(i).data());
  }
}

void axpy(double alpha, const Vector& b, Vector& a) {
  require_same_size(a, b, "axpy");
  kernels::active_kernels().axpy(a.size(), alpha, b.data(), a.data());
}

void scale(Matrix& a, double alpha) {
  // Flat sweep including the pad: alpha·0 = 0 preserves the invariant.
  kernels::active_kernels().scale(a.rows() * a.stride(), alpha, a.data());
}

void scale(Vector& a, double alpha) {
  kernels::active_kernels().scale(a.size(), alpha, a.data());
}

void row_scale(const Vector& d, Matrix& a) {
  if (d.size() != a.rows()) throw ShapeError("row_scale: length mismatch");
  kernels::active_kernels().row_scale(a.rows(), a.cols(), d.data(), a.data(),
                                      a.stride());
}

void weighted_residual_into(const Matrix& ys, const Matrix& hx,
                            const Vector& rinv, Matrix& out) {
  require_same_shape(ys, hx, "weighted_residual");
  if (rinv.size() != ys.rows()) {
    throw ShapeError("weighted_residual: weight length mismatch");
  }
  SENKF_REQUIRE(out.rows() == ys.rows() && out.cols() == ys.cols(),
                "weighted_residual_into: output shape mismatch");
  kernels::active_kernels().innovation(ys.rows(), ys.cols(), ys.data(),
                                       ys.stride(), hx.data(), hx.stride(),
                                       rinv.data(), out.data(), out.stride());
}

Matrix weighted_residual(const Matrix& ys, const Matrix& hx,
                         const Vector& rinv) {
  require_same_shape(ys, hx, "weighted_residual");
  if (rinv.size() != ys.rows()) {
    throw ShapeError("weighted_residual: weight length mismatch");
  }
  Matrix out(ys.rows(), ys.cols());
  weighted_residual_into(ys, hx, rinv, out);
  return out;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
  require_same_shape(a, b, "subtract");
  Matrix c = a;
  axpy(-1.0, b, c);
  return c;
}

Vector subtract(const Vector& a, const Vector& b) {
  require_same_size(a, b, "subtract");
  Vector c = a;
  axpy(-1.0, b, c);
  return c;
}

Matrix add(const Matrix& a, const Matrix& b) {
  require_same_shape(a, b, "add");
  Matrix c = a;
  axpy(1.0, b, c);
  return c;
}

Vector add(const Vector& a, const Vector& b) {
  require_same_size(a, b, "add");
  Vector c = a;
  axpy(1.0, b, c);
  return c;
}

double dot(const Vector& a, const Vector& b) {
  require_same_size(a, b, "dot");
  return kernels::active_kernels().dot(a.size(), a.data(), b.data());
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_frobenius(const Matrix& a) {
  const auto& table = kernels::active_kernels();
  double sum = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i).data();
    sum += table.dot(a.cols(), row, row);
  }
  return std::sqrt(sum);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  require_same_shape(a, b, "max_abs_diff");
  double worst = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    const double* ap = a.row(i).data();
    const double* bp = b.row(i).data();
    for (Index j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::abs(ap[j] - bp[j]));
    }
  }
  return worst;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  require_same_size(a, b, "max_abs_diff");
  double worst = 0.0;
  for (Index i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

bool is_symmetric(const Matrix& a, double tol) {
  if (!a.square()) return false;
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = i + 1; j < a.cols(); ++j) {
      if (std::abs(a(i, j) - a(j, i)) > tol) return false;
    }
  }
  return true;
}

}  // namespace senkf::linalg
