// Cholesky factorization of symmetric positive-definite matrices.
//
// The EnKF local analysis (paper eq. (6)) solves
//   [B̂⁻¹ + Hᵀ R⁻¹ H] z = Hᵀ R⁻¹ d
// whose system matrix is SPD, so Cholesky is the paper's solver of choice
// (§2.3 cites LAPACK Cholesky).  `CholeskyFactor` owns the lower factor L
// with A = L Lᵀ and offers solves, determinant and inverse.
#pragma once

#include "linalg/matrix.hpp"

namespace senkf::linalg {

class CholeskyFactor {
 public:
  /// Factorizes SPD `a` (lower triangle is read; symmetry is assumed).
  /// Throws NumericError if a non-positive pivot is met.
  explicit CholeskyFactor(const Matrix& a);

  const Matrix& lower() const { return l_; }
  Index dim() const { return l_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-wise.
  Matrix solve(const Matrix& b) const;

  /// log(det A) = 2 Σ log L_ii (numerically safe for big matrices).
  double log_determinant() const;

  /// Dense A⁻¹ (prefer solve() when only products are needed).
  Matrix inverse() const;

 private:
  Matrix l_;
};

/// Allocation-free factorization: overwrites pre-shaped n×n `l` with the
/// lower Cholesky factor of `a` (upper triangle of `l` is zeroed).  Same
/// numerics and failure behaviour as the CholeskyFactor constructor.
void cholesky_factor_into(const Matrix& a, Matrix& l);

/// Allocation-free solves against a factor produced by
/// cholesky_factor_into (or CholeskyFactor::lower()): overwrites `x`
/// (holding B on entry) with A⁻¹ B.  Bit-identical to
/// CholeskyFactor::solve on the same factor.
void cholesky_solve_in_place(const Matrix& l, Matrix& x);
void cholesky_solve_in_place(const Matrix& l, Vector& x);

/// Forward substitution: solves L y = b with lower-triangular L.
Vector solve_lower(const Matrix& l, const Vector& b);

/// Backward substitution: solves Lᵀ x = y with lower-triangular L.
Vector solve_lower_transposed(const Matrix& l, const Vector& y);

/// Convenience: solves SPD system A x = b via a one-shot factorization.
Vector solve_spd(const Matrix& a, const Vector& b);

/// Convenience: solves SPD system A X = B via a one-shot factorization.
Matrix solve_spd(const Matrix& a, const Matrix& b);

}  // namespace senkf::linalg
