#include "linalg/sparse_lower.hpp"

#include <cmath>

#include "linalg/kernels/dispatch.hpp"

namespace senkf::linalg {

SparseUnitLower SparseUnitLower::from_dense(const Matrix& l,
                                            double drop_tol) {
  SENKF_REQUIRE(l.square(), "SparseUnitLower: matrix must be square");
  SENKF_REQUIRE(drop_tol >= 0.0, "SparseUnitLower: drop_tol must be >= 0");
  const Index n = l.rows();
  SparseUnitLower out;
  out.row_start_.reserve(n + 1);
  out.row_start_.push_back(0);
  for (Index i = 0; i < n; ++i) {
    SENKF_REQUIRE(l(i, i) == 1.0,
                  "SparseUnitLower: diagonal must be exactly 1");
    for (Index j = 0; j < i; ++j) {
      const double v = l(i, j);
      if (std::abs(v) > drop_tol) {
        out.column_.push_back(j);
        out.values_.push_back(v);
      }
    }
    out.row_start_.push_back(out.values_.size());
  }
  return out;
}

std::size_t SparseUnitLower::memory_bytes() const {
  return row_start_.size() * sizeof(Index) + column_.size() * sizeof(Index) +
         values_.size() * sizeof(double);
}

Vector SparseUnitLower::multiply(const Vector& x) const {
  SENKF_REQUIRE(x.size() == dim(), "SparseUnitLower: length mismatch");
  Vector y = x;  // implicit unit diagonal
  // Each row is a sparse dot against x: the gather_dot kernel vectorizes
  // the value loads and gathers the x entries by column index.
  const auto& table = kernels::active_kernels();
  for (Index i = 0; i < dim(); ++i) {
    const Index begin = row_start_[i];
    const Index nnz = row_start_[i + 1] - begin;
    y[i] += table.gather_dot(nnz, values_.data() + begin,
                             column_.data() + begin, x.data());
  }
  return y;
}

Vector SparseUnitLower::multiply_transpose(const Vector& x) const {
  SENKF_REQUIRE(x.size() == dim(), "SparseUnitLower: length mismatch");
  Vector y = x;  // implicit unit diagonal
  for (Index i = 0; i < dim(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (Index s = row_start_[i]; s < row_start_[i + 1]; ++s) {
      y[column_[s]] += values_[s] * xi;
    }
  }
  return y;
}

Matrix SparseUnitLower::to_dense() const {
  Matrix out = Matrix::identity(dim());
  for (Index i = 0; i < dim(); ++i) {
    for (Index s = row_start_[i]; s < row_start_[i + 1]; ++s) {
      out(i, column_[s]) = values_[s];
    }
  }
  return out;
}

CompactModifiedCholesky CompactModifiedCholesky::from(
    const ModifiedCholesky& factors, double drop_tol) {
  return CompactModifiedCholesky{
      SparseUnitLower::from_dense(factors.l, drop_tol), factors.d};
}

Vector CompactModifiedCholesky::apply_inverse(const Vector& x) const {
  SENKF_REQUIRE(x.size() == dim(), "CompactModifiedCholesky: length mismatch");
  Vector t = l.multiply(x);
  for (Index i = 0; i < dim(); ++i) t[i] /= d[i];
  return l.multiply_transpose(t);
}

std::size_t CompactModifiedCholesky::memory_bytes() const {
  return l.memory_bytes() + d.size() * sizeof(double);
}

}  // namespace senkf::linalg
