// General dense solver (LU with partial pivoting).
//
// The EnKF path itself only needs SPD solves (cholesky.hpp); LU is kept for
// tests, diagnostics and the observation-operator pseudo-inverse utilities,
// and as an independent oracle to validate the Cholesky solver against.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace senkf::linalg {

/// LU factorization with partial pivoting: P A = L U.
class LuFactor {
 public:
  /// Throws NumericError on (numerically) singular input.
  explicit LuFactor(const Matrix& a);

  Index dim() const { return lu_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-wise.
  Matrix solve(const Matrix& b) const;

  /// Determinant (sign-corrected product of U's diagonal).
  double determinant() const;

 private:
  Matrix lu_;                 // packed L (unit diagonal) and U
  std::vector<Index> pivot_;  // row permutation
  int pivot_sign_ = 1;
};

/// Convenience one-shot solve of a general square system.
Vector solve_general(const Matrix& a, const Vector& b);

/// Dense inverse via LU (test/diagnostic use only).
Matrix inverse(const Matrix& a);

}  // namespace senkf::linalg
