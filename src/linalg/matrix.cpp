#include "linalg/matrix.hpp"

namespace senkf::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    SENKF_REQUIRE(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(Index n) {
  Matrix m(n, n, 0.0);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size(), 0.0);
  for (Index i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::column(Index j) const {
  SENKF_REQUIRE(j < cols_, "Matrix::column: index out of range");
  Vector out(rows_);
  for (Index i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::set_column(Index j, const Vector& values) {
  SENKF_REQUIRE(j < cols_, "Matrix::set_column: index out of range");
  SENKF_REQUIRE(values.size() == rows_,
                "Matrix::set_column: length mismatch");
  for (Index i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

}  // namespace senkf::linalg
