#include "linalg/matrix.hpp"

#include "linalg/kernels/dispatch.hpp"
#include "linalg/kernels/simdvec.hpp"

namespace senkf::linalg {

namespace {

// Default leading dimension: cols rounded up to the active kernel
// table's vector width.  With SENKF_KERNEL=scalar the width is 1 and
// matrices come out compact, so forcing scalar also reproduces the
// historical layout exactly.
Index default_stride(Index cols) {
  return kernels::padded_stride(cols, kernels::active_kernels().width);
}

}  // namespace

Matrix::Matrix(Index rows, Index cols, Index stride, double fill)
    : rows_(rows), cols_(cols), stride_(stride), data_(rows * stride, 0.0) {
  SENKF_ASSERT(stride_ >= cols_);
  if (fill != 0.0) {
    for (Index i = 0; i < rows_; ++i) {
      double* r = data_.data() + i * stride_;
      for (Index j = 0; j < cols_; ++j) r[j] = fill;
    }
  }
}

Matrix::Matrix(Index rows, Index cols, double fill)
    : Matrix(rows, cols, default_stride(cols), fill) {}

Matrix Matrix::compact(Index rows, Index cols, double fill) {
  return Matrix(rows, cols, /*stride=*/cols, fill);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : Matrix(rows.size(), rows.size() == 0 ? 0 : rows.begin()->size()) {
  Index i = 0;
  for (const auto& row : rows) {
    SENKF_REQUIRE(row.size() == cols_, "Matrix: ragged initializer list");
    double* dst = data_.data() + i * stride_;
    Index j = 0;
    for (double v : row) dst[j++] = v;
    ++i;
  }
}

Matrix Matrix::identity(Index n) {
  Matrix m(n, n, 0.0);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size(), 0.0);
  for (Index i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::column(Index j) const {
  SENKF_REQUIRE(j < cols_, "Matrix::column: index out of range");
  Vector out(rows_);
  for (Index i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::set_column(Index j, const Vector& values) {
  SENKF_REQUIRE(j < cols_, "Matrix::set_column: index out of range");
  SENKF_REQUIRE(values.size() == rows_,
                "Matrix::set_column: length mismatch");
  for (Index i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

}  // namespace senkf::linalg
