#include "linalg/matrix.hpp"

#include <cstring>

#include "linalg/kernels/dispatch.hpp"
#include "linalg/kernels/simdvec.hpp"

namespace senkf::linalg {

namespace {

// Default leading dimension: cols rounded up to the active kernel
// table's vector width.  With SENKF_KERNEL=scalar the width is 1 and
// matrices come out compact, so forcing scalar also reproduces the
// historical layout exactly.
Index default_stride(Index cols) {
  return kernels::padded_stride(cols, kernels::active_kernels().width);
}

}  // namespace

Vector Vector::scratch(std::span<double> storage) {
  Vector v;
  v.size_ = storage.size();
  v.ptr_ = storage.data();
  v.scratch_ = true;
  return v;
}

Matrix::Matrix(Index rows, Index cols, Index stride, double fill)
    : rows_(rows), cols_(cols), stride_(stride), data_(rows * stride, 0.0) {
  SENKF_ASSERT(stride_ >= cols_);
  ptr_ = data_.data();
  if (fill != 0.0) {
    for (Index i = 0; i < rows_; ++i) {
      double* r = ptr_ + i * stride_;
      for (Index j = 0; j < cols_; ++j) r[j] = fill;
    }
  }
}

Matrix::Matrix(Index rows, Index cols, double fill)
    : Matrix(rows, cols, default_stride(cols), fill) {}

Matrix Matrix::compact(Index rows, Index cols, double fill) {
  return Matrix(rows, cols, /*stride=*/cols, fill);
}

Index Matrix::padded_stride(Index cols) { return default_stride(cols); }

Matrix Matrix::scratch(std::span<double> storage, Index rows, Index cols,
                       Index stride) {
  SENKF_REQUIRE(stride >= cols, "Matrix::scratch: stride < cols");
  SENKF_REQUIRE(storage.size() >= rows * stride,
                "Matrix::scratch: storage too small");
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.stride_ = stride;
  m.ptr_ = storage.data();
  m.scratch_ = true;
  return m;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : Matrix(rows.size(), rows.size() == 0 ? 0 : rows.begin()->size()) {
  Index i = 0;
  for (const auto& row : rows) {
    SENKF_REQUIRE(row.size() == cols_, "Matrix: ragged initializer list");
    double* dst = ptr_ + i * stride_;
    Index j = 0;
    for (double v : row) dst[j++] = v;
    ++i;
  }
}

Matrix Matrix::identity(Index n) {
  Matrix m(n, n, 0.0);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size(), 0.0);
  for (Index i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::column(Index j) const {
  SENKF_REQUIRE(j < cols_, "Matrix::column: index out of range");
  Vector out(rows_);
  for (Index i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

void Matrix::set_column(Index j, const Vector& values) {
  SENKF_REQUIRE(j < cols_, "Matrix::set_column: index out of range");
  SENKF_REQUIRE(values.size() == rows_,
                "Matrix::set_column: length mismatch");
  for (Index i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

void Matrix::assign_values(const Matrix& src) {
  SENKF_REQUIRE(src.rows_ == rows_ && src.cols_ == cols_,
                "Matrix::assign_values: shape mismatch");
  if (src.stride_ == stride_) {
    if (rows_ * stride_ > 0) {
      std::memcpy(ptr_, src.ptr_, rows_ * stride_ * sizeof(double));
    }
    return;
  }
  for (Index i = 0; i < rows_; ++i) {
    std::memcpy(ptr_ + i * stride_, src.ptr_ + i * src.stride_,
                cols_ * sizeof(double));
  }
}

}  // namespace senkf::linalg
