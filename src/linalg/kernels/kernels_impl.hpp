// Single-source generic implementation of every KernelTable entry,
// templated over a simdvec.hpp vector policy `V` (ScalarOps, Avx2Ops,
// Avx512Ops, NeonOps).  Each per-ISA translation unit includes this
// header and instantiates `make_table<V>()`; no kernel logic exists
// anywhere else, so all ISAs share one algorithm and one FP-ordering
// contract (ascending-k accumulation per output element for the
// broadcast-saxpy products, lane-split sums for the dot-shaped ones).
//
// Padded fast paths: whenever every operand touched along the vectorized
// axis satisfies `ld >= padded_stride(n, V::kWidth)` (pad-zero contract,
// simdvec.hpp), the column loops run in whole vectors with no remainder;
// otherwise a scalar tail handles the last n % kWidth columns.  Both
// paths produce identical logical results — pad lanes only ever combine
// zeros.
//
// This header must be included after simdvec.hpp inside a translation
// unit that enables the target ISA; it is not meant for general use.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "linalg/kernels/kernels.hpp"

namespace senkf::linalg::kernels::impl {

/// Bound for whole-vector column processing: the padded stride when the
/// leading dimension proves the pad exists, else the last full vector.
template <class V>
constexpr Index vec_bound(Index n, Index min_ld) {
  const Index up = padded_stride(n, V::kWidth);
  return min_ld >= up ? up : n - n % V::kWidth;
}

template <class V>
void zero_rows(Index m, Index cols, double* c, Index ldc) {
  for (Index i = 0; i < m; ++i) std::fill_n(c + i * ldc, cols, 0.0);
}

// --------------------------------------------------------------------------
// GEMM, broadcast-saxpy family (nn / tn share a strided-A driver).
// --------------------------------------------------------------------------

// C[r][0..2W) += Σ_kk A(r, kk) · B(kk, 0..2W) for r = 0..3, with A(r, kk)
// at a[r·ars + kk·aks]; b and c are pre-offset to the tile's column.
template <class V>
void tile4x2(Index k0, Index kend, const double* a, Index ars, Index aks,
             const double* b, Index ldb, double* c, Index ldc) {
  constexpr Index W = V::kWidth;
  typename V::vd c00 = V::loadu(c + 0 * ldc);
  typename V::vd c01 = V::loadu(c + 0 * ldc + W);
  typename V::vd c10 = V::loadu(c + 1 * ldc);
  typename V::vd c11 = V::loadu(c + 1 * ldc + W);
  typename V::vd c20 = V::loadu(c + 2 * ldc);
  typename V::vd c21 = V::loadu(c + 2 * ldc + W);
  typename V::vd c30 = V::loadu(c + 3 * ldc);
  typename V::vd c31 = V::loadu(c + 3 * ldc + W);
  for (Index kk = k0; kk < kend; ++kk) {
    const double* bk = b + kk * ldb;
    const typename V::vd b0 = V::loadu(bk);
    const typename V::vd b1 = V::loadu(bk + W);
    const double* ak = a + kk * aks;
    const typename V::vd a0 = V::set1(ak[0 * ars]);
    c00 = V::fmadd(a0, b0, c00);
    c01 = V::fmadd(a0, b1, c01);
    const typename V::vd a1 = V::set1(ak[1 * ars]);
    c10 = V::fmadd(a1, b0, c10);
    c11 = V::fmadd(a1, b1, c11);
    const typename V::vd a2 = V::set1(ak[2 * ars]);
    c20 = V::fmadd(a2, b0, c20);
    c21 = V::fmadd(a2, b1, c21);
    const typename V::vd a3 = V::set1(ak[3 * ars]);
    c30 = V::fmadd(a3, b0, c30);
    c31 = V::fmadd(a3, b1, c31);
  }
  V::storeu(c + 0 * ldc, c00);
  V::storeu(c + 0 * ldc + W, c01);
  V::storeu(c + 1 * ldc, c10);
  V::storeu(c + 1 * ldc + W, c11);
  V::storeu(c + 2 * ldc, c20);
  V::storeu(c + 2 * ldc + W, c21);
  V::storeu(c + 3 * ldc, c30);
  V::storeu(c + 3 * ldc + W, c31);
}

// Single-row, single-vector edition for the row / column remainders.
template <class V>
void tile1x1(Index k0, Index kend, const double* a, Index aks,
             const double* b, Index ldb, double* c) {
  typename V::vd acc = V::loadu(c);
  for (Index kk = k0; kk < kend; ++kk) {
    acc = V::fmadd(V::set1(a[kk * aks]), V::loadu(b + kk * ldb), acc);
  }
  V::storeu(c, acc);
}

// Shared driver for C = op(A)·B: op selected by A's (row, k) strides —
// (lda, 1) for A as given, (1, lda) for Aᵀ of a k×m matrix.
template <class V>
void gemm_driver(Index m, Index n, Index k, const double* a, Index ars,
                 Index aks, const double* b, Index ldb, double* c,
                 Index ldc) {
  constexpr Index W = V::kWidth;
  // Whole-vector columns need both the B loads and the C stores to stay
  // in bounds past n; pad lanes then accumulate a·0 and stay zero.
  const Index nv = vec_bound<V>(n, std::min(ldb, ldc));
  zero_rows<V>(m, std::max(n, nv), c, ldc);
  for (Index j0 = 0; j0 < n; j0 += kBlockN) {
    const Index jend = std::min(n, j0 + kBlockN);
    const Index jvec = std::min(nv, j0 + kBlockN);
    for (Index k0 = 0; k0 < k; k0 += kBlockK) {
      const Index kend = std::min(k, k0 + kBlockK);
      Index i = 0;
      for (; i + 4 <= m; i += 4) {
        const double* ai = a + i * ars;
        Index j = j0;
        for (; j + 2 * W <= jvec; j += 2 * W) {
          tile4x2<V>(k0, kend, ai, ars, aks, b + j, ldb, c + i * ldc + j,
                     ldc);
        }
        for (; j + W <= jvec; j += W) {
          for (Index r = 0; r < 4; ++r) {
            tile1x1<V>(k0, kend, ai + r * ars, aks, b + j, ldb,
                       c + (i + r) * ldc + j);
          }
        }
        for (; j < jend; ++j) {
          for (Index r = 0; r < 4; ++r) {
            double sum = c[(i + r) * ldc + j];
            for (Index kk = k0; kk < kend; ++kk) {
              sum += ai[r * ars + kk * aks] * b[kk * ldb + j];
            }
            c[(i + r) * ldc + j] = sum;
          }
        }
      }
      for (; i < m; ++i) {
        const double* ai = a + i * ars;
        Index j = j0;
        for (; j + W <= jvec; j += W) {
          tile1x1<V>(k0, kend, ai, aks, b + j, ldb, c + i * ldc + j);
        }
        for (; j < jend; ++j) {
          double sum = c[i * ldc + j];
          for (Index kk = k0; kk < kend; ++kk) {
            sum += ai[kk * aks] * b[kk * ldb + j];
          }
          c[i * ldc + j] = sum;
        }
      }
    }
  }
}

template <class V>
void gemm_nn(Index m, Index n, Index k, const double* a, Index lda,
             const double* b, Index ldb, double* c, Index ldc) {
  gemm_driver<V>(m, n, k, a, lda, 1, b, ldb, c, ldc);
}

template <class V>
void gemm_tn(Index m, Index n, Index k, const double* a, Index lda,
             const double* b, Index ldb, double* c, Index ldc) {
  gemm_driver<V>(m, n, k, a, 1, lda, b, ldb, c, ldc);
}

// --------------------------------------------------------------------------
// Dot-shaped family (nt products, gemv, dot, gather_dot).
// --------------------------------------------------------------------------

/// Σ x[i]·y[i] with four striped vector accumulators (FMA latency is
/// 4-5 cycles at ~2/cycle throughput, so fewer chains leave the units
/// idle) plus a scalar tail; the lane/stripe-split deviation from a
/// strict ascending sum is the tolerated cross-ISA divergence.
template <class V>
double dot_span(Index n, const double* x, const double* y) {
  constexpr Index W = V::kWidth;
  typename V::vd acc0 = V::zero();
  typename V::vd acc1 = V::zero();
  typename V::vd acc2 = V::zero();
  typename V::vd acc3 = V::zero();
  Index i = 0;
  for (; i + 4 * W <= n; i += 4 * W) {
    acc0 = V::fmadd(V::loadu(x + i), V::loadu(y + i), acc0);
    acc1 = V::fmadd(V::loadu(x + i + W), V::loadu(y + i + W), acc1);
    acc2 = V::fmadd(V::loadu(x + i + 2 * W), V::loadu(y + i + 2 * W), acc2);
    acc3 = V::fmadd(V::loadu(x + i + 3 * W), V::loadu(y + i + 3 * W), acc3);
  }
  for (; i + W <= n; i += W) {
    acc0 = V::fmadd(V::loadu(x + i), V::loadu(y + i), acc0);
  }
  double sum =
      V::hsum(V::add(V::add(acc0, acc1), V::add(acc2, acc3)));
  for (; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

// C = A·Bᵀ with B stored n×k: rows of both operands are contiguous, so
// each element is a straight dot product; four B rows at a time reuse
// each A load.
template <class V>
void gemm_nt(Index m, Index n, Index k, const double* a, Index lda,
             const double* b, Index ldb, double* c, Index ldc) {
  constexpr Index W = V::kWidth;
  const Index kv = vec_bound<V>(k, std::min(lda, ldb));
  for (Index i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + (j + 0) * ldb;
      const double* b1 = b + (j + 1) * ldb;
      const double* b2 = b + (j + 2) * ldb;
      const double* b3 = b + (j + 3) * ldb;
      typename V::vd acc0 = V::zero();
      typename V::vd acc1 = V::zero();
      typename V::vd acc2 = V::zero();
      typename V::vd acc3 = V::zero();
      Index kk = 0;
      for (; kk + W <= kv; kk += W) {
        const typename V::vd av = V::loadu(ai + kk);
        acc0 = V::fmadd(av, V::loadu(b0 + kk), acc0);
        acc1 = V::fmadd(av, V::loadu(b1 + kk), acc1);
        acc2 = V::fmadd(av, V::loadu(b2 + kk), acc2);
        acc3 = V::fmadd(av, V::loadu(b3 + kk), acc3);
      }
      double s0 = V::hsum(acc0), s1 = V::hsum(acc1);
      double s2 = V::hsum(acc2), s3 = V::hsum(acc3);
      for (; kk < k; ++kk) {
        const double av = ai[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      ci[j] = s0;
      ci[j + 1] = s1;
      ci[j + 2] = s2;
      ci[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const double* bj = b + j * ldb;
      typename V::vd acc = V::zero();
      Index kk = 0;
      for (; kk + W <= kv; kk += W) {
        acc = V::fmadd(V::loadu(ai + kk), V::loadu(bj + kk), acc);
      }
      double sum = V::hsum(acc);
      for (; kk < k; ++kk) sum += ai[kk] * bj[kk];
      ci[j] = sum;
    }
  }
}

template <class V>
void gemv_n(Index m, Index n, const double* a, Index lda, const double* x,
            double* y) {
  constexpr Index W = V::kWidth;
  for (Index i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    typename V::vd acc = V::zero();
    Index j = 0;
    for (; j + W <= n; j += W) {
      acc = V::fmadd(V::loadu(ai + j), V::loadu(x + j), acc);
    }
    double sum = V::hsum(acc);
    for (; j < n; ++j) sum += ai[j] * x[j];
    y[i] = sum;
  }
}

template <class V>
void gemv_t(Index m, Index n, const double* a, Index lda, const double* x,
            double* y) {
  constexpr Index W = V::kWidth;
  std::fill_n(y, n, 0.0);
  for (Index i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    const typename V::vd xi = V::set1(x[i]);
    Index j = 0;
    for (; j + W <= n; j += W) {
      V::storeu(y + j, V::fmadd(xi, V::loadu(ai + j), V::loadu(y + j)));
    }
    for (; j < n; ++j) y[j] += ai[j] * x[i];
  }
}

template <class V>
double dot(Index n, const double* x, const double* y) {
  return dot_span<V>(n, x, y);
}

template <class V>
double gather_dot(Index nnz, const double* values, const Index* cols,
                  const double* x) {
  constexpr Index W = V::kWidth;
  typename V::vd acc = V::zero();
  Index s = 0;
  for (; s + W <= nnz; s += W) {
    acc = V::fmadd(V::loadu(values + s), V::gather(x, cols + s), acc);
  }
  double sum = V::hsum(acc);
  for (; s < nnz; ++s) sum += values[s] * x[cols[s]];
  return sum;
}

// --------------------------------------------------------------------------
// Blocked SPD Cholesky and triangular solves.
// --------------------------------------------------------------------------

// Four simultaneous dots of one shared row x against four rows y0..y3,
// one accumulator chain per dot so each x load feeds four FMAs (a lone
// dot is load-bound at two loads per FMA, which is what capped the
// potrf panel update).  Accumulation stays dot-shaped — W-lane chains
// plus a scalar tail — inside the tolerance envelope of dot_span.
template <class V>
void dot_span4(Index n, const double* x, const double* y0, const double* y1,
               const double* y2, const double* y3, double* out) {
  constexpr Index W = V::kWidth;
  typename V::vd a0 = V::zero();
  typename V::vd a1 = V::zero();
  typename V::vd a2 = V::zero();
  typename V::vd a3 = V::zero();
  Index i = 0;
  for (; i + W <= n; i += W) {
    const typename V::vd xv = V::loadu(x + i);
    a0 = V::fmadd(xv, V::loadu(y0 + i), a0);
    a1 = V::fmadd(xv, V::loadu(y1 + i), a1);
    a2 = V::fmadd(xv, V::loadu(y2 + i), a2);
    a3 = V::fmadd(xv, V::loadu(y3 + i), a3);
  }
  double s0 = V::hsum(a0);
  double s1 = V::hsum(a1);
  double s2 = V::hsum(a2);
  double s3 = V::hsum(a3);
  for (; i < n; ++i) {
    const double xi = x[i];
    s0 += xi * y0[i];
    s1 += xi * y1[i];
    s2 += xi * y2[i];
    s3 += xi * y3[i];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

// Eight simultaneous dots — four rows of x against two rows of y — so
// every y load feeds four FMAs and every x load two.  Beyond the ILP
// win this quarters the y-row streaming traffic, which is what bounds
// the potrf panel update once the factor outgrows L1.
template <class V>
void dot_tile_4x2(Index n, const double* x0, const double* x1,
                  const double* x2, const double* x3, const double* y0,
                  const double* y1, double* out) {
  constexpr Index W = V::kWidth;
  typename V::vd a00 = V::zero();
  typename V::vd a01 = V::zero();
  typename V::vd a10 = V::zero();
  typename V::vd a11 = V::zero();
  typename V::vd a20 = V::zero();
  typename V::vd a21 = V::zero();
  typename V::vd a30 = V::zero();
  typename V::vd a31 = V::zero();
  Index k = 0;
  for (; k + W <= n; k += W) {
    const typename V::vd yv0 = V::loadu(y0 + k);
    const typename V::vd yv1 = V::loadu(y1 + k);
    typename V::vd xv = V::loadu(x0 + k);
    a00 = V::fmadd(xv, yv0, a00);
    a01 = V::fmadd(xv, yv1, a01);
    xv = V::loadu(x1 + k);
    a10 = V::fmadd(xv, yv0, a10);
    a11 = V::fmadd(xv, yv1, a11);
    xv = V::loadu(x2 + k);
    a20 = V::fmadd(xv, yv0, a20);
    a21 = V::fmadd(xv, yv1, a21);
    xv = V::loadu(x3 + k);
    a30 = V::fmadd(xv, yv0, a30);
    a31 = V::fmadd(xv, yv1, a31);
  }
  double s[8] = {V::hsum(a00), V::hsum(a01), V::hsum(a10), V::hsum(a11),
                 V::hsum(a20), V::hsum(a21), V::hsum(a30), V::hsum(a31)};
  for (; k < n; ++k) {
    s[0] += x0[k] * y0[k];
    s[1] += x0[k] * y1[k];
    s[2] += x1[k] * y0[k];
    s[3] += x1[k] * y1[k];
    s[4] += x2[k] * y0[k];
    s[5] += x2[k] * y1[k];
    s[6] += x3[k] * y0[k];
    s[7] += x3[k] * y1[k];
  }
  for (int t = 0; t < 8; ++t) out[t] = s[t];
}

// Left-looking blocked factorization: for each kPotrfBlock-wide column
// panel, (1) subtract the contribution of all columns left of the panel
// from the panel — dots of already-final L rows, the flop-dominant
// O(n²·j0) part that vectorizes over k — then (2) factor the panel with
// within-panel dots (length < kPotrfBlock).  Only the lower triangle is
// read or written; the first non-positive pivot index is returned, -1 on
// success.
template <class V>
std::ptrdiff_t potrf(Index n, double* a, Index lda) {
  for (Index j0 = 0; j0 < n; j0 += kPotrfBlock) {
    const Index jb = std::min(kPotrfBlock, n - j0);
    // (1) A[i][j] -= L[i, 0:j0) · L[j, 0:j0) for the panel's lower part.
    // Triangle rows inside the diagonal block go column-blocked (four
    // panel columns share each load of L's row i); the full-width rows
    // below it go through 4×2 dot tiles so the panel's rows are
    // streamed a quarter as often.
    if (j0 > 0) {
      double d4[4];
      const Index pend = j0 + jb;
      for (Index i = j0; i < pend; ++i) {
        const double* li = a + i * lda;
        const Index jmax = std::min(i + 1, pend);
        Index j = j0;
        for (; j + 4 <= jmax; j += 4) {
          dot_span4<V>(j0, li, a + j * lda, a + (j + 1) * lda,
                       a + (j + 2) * lda, a + (j + 3) * lda, d4);
          a[i * lda + j] -= d4[0];
          a[i * lda + j + 1] -= d4[1];
          a[i * lda + j + 2] -= d4[2];
          a[i * lda + j + 3] -= d4[3];
        }
        for (; j < jmax; ++j) {
          a[i * lda + j] -= dot_span<V>(j0, li, a + j * lda);
        }
      }
      double d8[8];
      Index i = pend;
      for (; i + 4 <= n; i += 4) {
        const double* li0 = a + (i + 0) * lda;
        const double* li1 = a + (i + 1) * lda;
        const double* li2 = a + (i + 2) * lda;
        const double* li3 = a + (i + 3) * lda;
        Index j = j0;
        for (; j + 2 <= pend; j += 2) {
          dot_tile_4x2<V>(j0, li0, li1, li2, li3, a + j * lda,
                          a + (j + 1) * lda, d8);
          a[(i + 0) * lda + j] -= d8[0];
          a[(i + 0) * lda + j + 1] -= d8[1];
          a[(i + 1) * lda + j] -= d8[2];
          a[(i + 1) * lda + j + 1] -= d8[3];
          a[(i + 2) * lda + j] -= d8[4];
          a[(i + 2) * lda + j + 1] -= d8[5];
          a[(i + 3) * lda + j] -= d8[6];
          a[(i + 3) * lda + j + 1] -= d8[7];
        }
        for (; j < pend; ++j) {
          dot_span4<V>(j0, a + j * lda, li0, li1, li2, li3, d4);
          a[(i + 0) * lda + j] -= d4[0];
          a[(i + 1) * lda + j] -= d4[1];
          a[(i + 2) * lda + j] -= d4[2];
          a[(i + 3) * lda + j] -= d4[3];
        }
      }
      for (; i < n; ++i) {
        const double* li = a + i * lda;
        Index j = j0;
        for (; j + 4 <= pend; j += 4) {
          dot_span4<V>(j0, li, a + j * lda, a + (j + 1) * lda,
                       a + (j + 2) * lda, a + (j + 3) * lda, d4);
          a[i * lda + j] -= d4[0];
          a[i * lda + j + 1] -= d4[1];
          a[i * lda + j + 2] -= d4[2];
          a[i * lda + j + 3] -= d4[3];
        }
        for (; j < pend; ++j) {
          a[i * lda + j] -= dot_span<V>(j0, li, a + j * lda);
        }
      }
    }
    // (2) factor the panel in 4-column groups.  Each group factors its
    // 4×4 diagonal corner in place, then makes ONE contiguous pass over
    // the rows below: the row's four group entries are micro-solved in
    // registers (forward substitution against the corner), stored back
    // scaled, and the row's trailing panel segment takes the rank-4
    // update in the same touch.  Nothing walks a column — the strided
    // per-column divide/update sweeps of a classic right-looking panel
    // cost a cache line per element and throttled the whole factor —
    // and every element accumulates in the identical ascending-column
    // order on every ISA (no horizontal sums).
    constexpr Index W = V::kWidth;
    const Index jend = j0 + jb;
    double cbuf[4][kPotrfBlock];
    for (Index jg = j0; jg < jend; jg += 4) {
      const Index gend = std::min(jg + 4, jend);
      const Index g = gend - jg;
      // (2a) unblocked factor of the g×g corner (rows jg..gend).
      for (Index j = jg; j < gend; ++j) {
        double diag = a[j * lda + j];
        for (Index k = jg; k < j; ++k) diag -= a[j * lda + k] * a[j * lda + k];
        if (!(diag > 0.0)) return static_cast<std::ptrdiff_t>(j);
        const double ljj = std::sqrt(diag);
        a[j * lda + j] = ljj;
        for (Index i = j + 1; i < gend; ++i) {
          double s = a[i * lda + j];
          for (Index k = jg; k < j; ++k) s -= a[i * lda + k] * a[j * lda + k];
          a[i * lda + j] = s / ljj;
        }
      }
      if (gend >= n) continue;
      // Corner multipliers and reciprocal pivots for the row micro-solve
      // (zeros for the unused slots of a partial trailing group, so the
      // four-way FMA below adds exact zeros for them).
      const double* c0 = a + (jg + 0) * lda;
      const double* c1 = a + (jg + std::min<Index>(1, g - 1)) * lda;
      const double* c2 = a + (jg + std::min<Index>(2, g - 1)) * lda;
      const double* c3 = a + (jg + std::min<Index>(3, g - 1)) * lda;
      const double l10 = g > 1 ? c1[jg] : 0.0;
      const double l20 = g > 2 ? c2[jg] : 0.0;
      const double l21 = g > 2 ? c2[jg + 1] : 0.0;
      const double l30 = g > 3 ? c3[jg] : 0.0;
      const double l31 = g > 3 ? c3[jg + 1] : 0.0;
      const double l32 = g > 3 ? c3[jg + 2] : 0.0;
      const double inv0 = 1.0 / c0[jg];
      const double inv1 = g > 1 ? 1.0 / c1[jg + 1] : 0.0;
      const double inv2 = g > 2 ? 1.0 / c2[jg + 2] : 0.0;
      const double inv3 = g > 3 ? 1.0 / c3[jg + 3] : 0.0;
      if (g < 4) {
        for (Index m = g; m < 4; ++m) {
          for (Index r = 0; r < jend - gend; ++r) cbuf[m][r] = 0.0;
        }
      }
      // (2b) single row pass: micro-solve, store, trailing rank-4.
      for (Index i = gend; i < n; ++i) {
        double* ri = a + i * lda;
        const double v0 = ri[jg] * inv0;
        const double v1 = g > 1 ? (ri[jg + 1] - v0 * l10) * inv1 : 0.0;
        const double v2 =
            g > 2 ? (ri[jg + 2] - v0 * l20 - v1 * l21) * inv2 : 0.0;
        const double v3 =
            g > 3 ? (ri[jg + 3] - v0 * l30 - v1 * l31 - v2 * l32) * inv3
                  : 0.0;
        ri[jg] = v0;
        if (g > 1) ri[jg + 1] = v1;
        if (g > 2) ri[jg + 2] = v2;
        if (g > 3) ri[jg + 3] = v3;
        if (i < jend) {
          // Diagonal-block row: its scaled entries are the trailing
          // columns' multiplicands for every later row in this pass.
          cbuf[0][i - gend] = v0;
          cbuf[1][i - gend] = v1;
          cbuf[2][i - gend] = v2;
          cbuf[3][i - gend] = v3;
        }
        const Index len = std::min(i + 1, jend) - gend;
        if (len <= 0) continue;
        double* row = ri + gend;
        const typename V::vd b0 = V::set1(v0);
        const typename V::vd b1 = V::set1(v1);
        const typename V::vd b2 = V::set1(v2);
        const typename V::vd b3 = V::set1(v3);
        Index r = 0;
        for (; r + W <= len; r += W) {
          typename V::vd acc = V::loadu(row + r);
          acc = V::fnmadd(b0, V::loadu(cbuf[0] + r), acc);
          acc = V::fnmadd(b1, V::loadu(cbuf[1] + r), acc);
          acc = V::fnmadd(b2, V::loadu(cbuf[2] + r), acc);
          acc = V::fnmadd(b3, V::loadu(cbuf[3] + r), acc);
          V::storeu(row + r, acc);
        }
        for (; r < len; ++r) {
          double s = row[r];
          s -= v0 * cbuf[0][r];
          s -= v1 * cbuf[1][r];
          s -= v2 * cbuf[2][r];
          s -= v3 * cbuf[3][r];
          row[r] = s;
        }
      }
    }
  }
  return -1;
}

// One solve row in a triangular sweep, register-blocked over the RHS
// columns: accumulators for up to 4 vectors of X's row i stay in
// registers across the whole k reduction (one load and one store per
// element instead of one per k — the in-memory read-modify-write chain
// is what kept the naive form latency-bound).  Per element the order is
// untouched: fnmadd in ascending k, then the divide, on every ISA.
template <class V, class NextRow>
void trsm_row(Index nrhs, Index jv, double* xi, double lii, Index k_begin,
              Index k_end, const double* l_col, Index l_stride,
              NextRow next_row) {
  constexpr Index W = V::kWidth;
  const typename V::vd dv = V::set1(lii);
  Index j = 0;
  for (; j + 4 * W <= jv; j += 4 * W) {
    typename V::vd r0 = V::loadu(xi + j);
    typename V::vd r1 = V::loadu(xi + j + W);
    typename V::vd r2 = V::loadu(xi + j + 2 * W);
    typename V::vd r3 = V::loadu(xi + j + 3 * W);
    for (Index k = k_begin; k < k_end; ++k) {
      const typename V::vd lv = V::set1(l_col[k * l_stride]);
      const double* xk = next_row(k) + j;
      r0 = V::fnmadd(lv, V::loadu(xk), r0);
      r1 = V::fnmadd(lv, V::loadu(xk + W), r1);
      r2 = V::fnmadd(lv, V::loadu(xk + 2 * W), r2);
      r3 = V::fnmadd(lv, V::loadu(xk + 3 * W), r3);
    }
    V::storeu(xi + j, V::div(r0, dv));
    V::storeu(xi + j + W, V::div(r1, dv));
    V::storeu(xi + j + 2 * W, V::div(r2, dv));
    V::storeu(xi + j + 3 * W, V::div(r3, dv));
  }
  for (; j + W <= jv; j += W) {
    typename V::vd r = V::loadu(xi + j);
    for (Index k = k_begin; k < k_end; ++k) {
      r = V::fnmadd(V::set1(l_col[k * l_stride]), V::loadu(next_row(k) + j),
                    r);
    }
    V::storeu(xi + j, V::div(r, dv));
  }
  for (; j < nrhs; ++j) {
    double s = xi[j];
    for (Index k = k_begin; k < k_end; ++k) {
      s -= l_col[k * l_stride] * next_row(k)[j];
    }
    xi[j] = s / lii;
  }
}

// Forward solve L·X = B in place: row i of X is B's row i minus the
// ascending-k combination of the rows above it, divided by L(i,i).  The
// vectorization axis is the RHS columns, so every X element accumulates
// in the exact same ascending-k order on every ISA.
template <class V>
void trsm_lln(Index n, Index nrhs, const double* l, Index ldl, double* b,
              Index ldb) {
  const Index jv = vec_bound<V>(nrhs, ldb);
  for (Index i = 0; i < n; ++i) {
    trsm_row<V>(nrhs, jv, b + i * ldb, l[i * ldl + i], 0, i, l + i * ldl, 1,
                [b, ldb](Index k) { return b + k * ldb; });
  }
}

// Backward solve Lᵀ·X = B in place: rows from the bottom up, inner k
// ascending from i+1 so the reduction order matches across ISAs.
template <class V>
void trsm_llt(Index n, Index nrhs, const double* l, Index ldl, double* b,
              Index ldb) {
  const Index jv = vec_bound<V>(nrhs, ldb);
  for (Index ip = n; ip-- > 0;) {
    trsm_row<V>(nrhs, jv, b + ip * ldb, l[ip * ldl + ip], ip + 1, n,
                l + ip, ldl, [b, ldb](Index k) { return b + k * ldb; });
  }
}

// --------------------------------------------------------------------------
// Innovation / observation-space ops.
// --------------------------------------------------------------------------

template <class V>
void axpy(Index n, double alpha, const double* x, double* y) {
  constexpr Index W = V::kWidth;
  const typename V::vd av = V::set1(alpha);
  Index i = 0;
  for (; i + W <= n; i += W) {
    V::storeu(y + i, V::fmadd(av, V::loadu(x + i), V::loadu(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

template <class V>
void scale(Index n, double alpha, double* x) {
  constexpr Index W = V::kWidth;
  const typename V::vd av = V::set1(alpha);
  Index i = 0;
  for (; i + W <= n; i += W) {
    V::storeu(x + i, V::mul(av, V::loadu(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

template <class V>
void row_scale(Index m, Index n, const double* d, double* a, Index lda) {
  constexpr Index W = V::kWidth;
  const Index jv = vec_bound<V>(n, lda);
  for (Index r = 0; r < m; ++r) {
    double* row = a + r * lda;
    const typename V::vd dv = V::set1(d[r]);
    Index j = 0;
    for (; j + W <= jv; j += W) {
      V::storeu(row + j, V::mul(dv, V::loadu(row + j)));
    }
    for (; j < n; ++j) row[j] *= d[r];
  }
}

template <class V>
void innovation(Index m, Index n, const double* ys, Index ldy,
                const double* hx, Index ldh, const double* rinv, double* out,
                Index ldo) {
  constexpr Index W = V::kWidth;
  const Index jv = vec_bound<V>(n, std::min(ldo, std::min(ldy, ldh)));
  for (Index r = 0; r < m; ++r) {
    const double* ysr = ys + r * ldy;
    const double* hxr = hx + r * ldh;
    double* outr = out + r * ldo;
    const typename V::vd rv = V::set1(rinv[r]);
    Index j = 0;
    for (; j + W <= jv; j += W) {
      V::storeu(outr + j,
                V::mul(rv, V::sub(V::loadu(ysr + j), V::loadu(hxr + j))));
    }
    for (; j < n; ++j) outr[j] = rinv[r] * (ysr[j] - hxr[j]);
  }
}

/// Fills a KernelTable with this policy's instantiations.
template <class V>
KernelTable make_table(const char* name) {
  return KernelTable{name,
                     V::kWidth,
                     &gemm_nn<V>,
                     &gemm_tn<V>,
                     &gemm_nt<V>,
                     &gemv_n<V>,
                     &gemv_t<V>,
                     &potrf<V>,
                     &trsm_lln<V>,
                     &trsm_llt<V>,
                     &axpy<V>,
                     &scale<V>,
                     &row_scale<V>,
                     &innovation<V>,
                     &dot<V>,
                     &gather_dot<V>};
}

}  // namespace senkf::linalg::kernels::impl
