#include "linalg/kernels/dispatch.hpp"

#include <cstdlib>
#include <string>

#include "support/error.hpp"
#include "support/logging.hpp"
#include "telemetry/metrics.hpp"

namespace senkf::linalg::kernels {

namespace {

// Records the resolved table in the registry.  Called exactly once per
// process, from active_kernels()'s initializer: the
// kernels.dispatch.<name> counter answers "which code path ran?" without
// a debug log, and the kernels.active gauge (vector width in doubles)
// flows into the run report.
void note_dispatch(const KernelTable& table) {
  auto& registry = telemetry::Registry::global();
  registry.counter(std::string("kernels.dispatch.") + table.name).add(1);
  registry.gauge("kernels.active").set(static_cast<std::int64_t>(table.width));
}

// A requested ISA that this binary/CPU can't run degrades to scalar (not
// to the next-widest ISA): predictable, and what the CI fallback
// assertions pin down.
const KernelTable& fallback_to_scalar(const char* want, const char* why) {
  SENKF_LOG_WARN("SENKF_KERNEL=", want, " requested but ", why,
                 "; falling back to scalar kernels");
  return scalar_kernels();
}

}  // namespace

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

bool cpu_supports_neon() {
#if defined(__aarch64__)
  return true;  // NEON is part of the aarch64 base ISA
#else
  return false;
#endif
}

const KernelTable& resolve_kernels(const char* requested) {
  const std::string want = requested == nullptr ? "" : requested;
  const KernelTable* avx512 = avx512_kernels();
  const KernelTable* avx2 = avx2_kernels();
  const KernelTable* neon = neon_kernels();
  const bool avx512_usable = avx512 != nullptr && cpu_supports_avx512();
  const bool avx2_usable = avx2 != nullptr && cpu_supports_avx2();
  const bool neon_usable = neon != nullptr && cpu_supports_neon();

  if (want == "scalar") return scalar_kernels();
  if (want == "avx512") {
    if (avx512_usable) return *avx512;
    return fallback_to_scalar("avx512",
                              avx512 == nullptr
                                  ? "this build has no AVX-512 kernels"
                                  : "the CPU lacks AVX-512 F/DQ");
  }
  if (want == "avx2") {
    if (avx2_usable) return *avx2;
    return fallback_to_scalar("avx2",
                              avx2 == nullptr
                                  ? "this build has no AVX2 kernels"
                                  : "the CPU lacks AVX2/FMA");
  }
  if (want == "neon") {
    if (neon_usable) return *neon;
    return fallback_to_scalar("neon", "this build has no NEON kernels");
  }
  if (!want.empty() && want != "auto") {
    throw InvalidArgument("SENKF_KERNEL: unknown kernel set '" + want +
                          "' (expected scalar, avx2, avx512, neon or auto)");
  }
  if (avx512_usable) return *avx512;
  if (avx2_usable) return *avx2;
  if (neon_usable) return *neon;
  return scalar_kernels();
}

const KernelTable& active_kernels() {
  static const KernelTable& table = []() -> const KernelTable& {
    const KernelTable& resolved = resolve_kernels(std::getenv("SENKF_KERNEL"));
    note_dispatch(resolved);
    return resolved;
  }();
  return table;
}

}  // namespace senkf::linalg::kernels
