#include "linalg/kernels/dispatch.hpp"

#include <cstdlib>
#include <string>

#include "support/error.hpp"
#include "support/logging.hpp"
#include "telemetry/metrics.hpp"

namespace senkf::linalg::kernels {

namespace {
// Which kernel set resolve picked (kernels.dispatch.scalar / .avx2): the
// metrics snapshot answers "which code path ran?" without a debug log.
const KernelTable& count_selection(const KernelTable& table,
                                   const char* name) {
  telemetry::Registry::global()
      .counter(std::string("kernels.dispatch.") + name)
      .add(1);
  return table;
}
}  // namespace

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable& resolve_kernels(const char* requested) {
  const std::string want = requested == nullptr ? "" : requested;
  if (want == "scalar") return count_selection(scalar_kernels(), "scalar");

  const KernelTable* avx2 = avx2_kernels();
  const bool avx2_usable = avx2 != nullptr && cpu_supports_avx2();
  if (want == "avx2") {
    if (avx2_usable) return count_selection(*avx2, "avx2");
    SENKF_LOG_WARN("SENKF_KERNEL=avx2 requested but ",
                   avx2 == nullptr ? "this build has no AVX2 kernels"
                                   : "the CPU lacks AVX2/FMA",
                   "; falling back to scalar kernels");
    return count_selection(scalar_kernels(), "scalar");
  }
  if (!want.empty() && want != "auto") {
    throw InvalidArgument("SENKF_KERNEL: unknown kernel set '" + want +
                          "' (expected scalar, avx2 or auto)");
  }
  return avx2_usable ? count_selection(*avx2, "avx2")
                     : count_selection(scalar_kernels(), "scalar");
}

const KernelTable& active_kernels() {
  static const KernelTable& table =
      resolve_kernels(std::getenv("SENKF_KERNEL"));
  return table;
}

}  // namespace senkf::linalg::kernels
