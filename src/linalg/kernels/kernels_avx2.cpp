// AVX2+FMA instantiation of the generic kernel plane.  This is the only
// translation unit in the library that may contain AVX2 instructions;
// CMake compiles it with per-file `-mavx2 -mfma` (the rest of the build
// stays at the base ISA so the binary still runs on non-AVX2 hosts —
// dispatch.cpp checks CPUID before ever calling into this file).  On
// toolchains/architectures without AVX2 the whole implementation
// compiles away and avx2_kernels() returns nullptr.
#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/simdvec.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include "linalg/kernels/kernels_impl.hpp"

namespace senkf::linalg::kernels {

const KernelTable* avx2_kernels() {
  static const KernelTable table = impl::make_table<Avx2Ops>("avx2");
  return &table;
}

}  // namespace senkf::linalg::kernels

#else  // !(__AVX2__ && __FMA__)

namespace senkf::linalg::kernels {

const KernelTable* avx2_kernels() { return nullptr; }

}  // namespace senkf::linalg::kernels

#endif
