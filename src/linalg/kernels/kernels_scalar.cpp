// Portable reference instantiation of the generic kernel plane — the
// semantics every SIMD table must match and the fallback on hosts
// without a usable vector ISA.  Compiled at the base ISA (no per-file
// flags) so the binary runs anywhere.
#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/kernels_impl.hpp"
#include "linalg/kernels/simdvec.hpp"

namespace senkf::linalg::kernels {

const KernelTable& scalar_kernels() {
  static const KernelTable table = impl::make_table<ScalarOps>("scalar");
  return table;
}

}  // namespace senkf::linalg::kernels
