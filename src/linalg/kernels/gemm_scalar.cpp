// Portable cache-blocked kernels — the reference every SIMD
// implementation must match and the fallback on non-AVX2 hosts.
//
// The inner loops are branchless (no zero-skip: it defeats
// auto-vectorization and makes the FP summation order data-dependent) and
// iterate k in ascending order per output element, the contract that keeps
// scalar and SIMD results within rounding of each other.
#include "linalg/kernels/kernels.hpp"

#include <algorithm>

namespace senkf::linalg::kernels {
namespace {

void zero_rows(Index m, Index n, double* c, Index ldc) {
  for (Index i = 0; i < m; ++i) std::fill_n(c + i * ldc, n, 0.0);
}

// C = A·B, ikj order inside (jc, kc) cache blocks: each B row segment is
// streamed contiguously and C rows stay hot across the kk loop.
void gemm_nn(Index m, Index n, Index k, const double* a, Index lda,
             const double* b, Index ldb, double* c, Index ldc) {
  zero_rows(m, n, c, ldc);
  for (Index j0 = 0; j0 < n; j0 += kBlockN) {
    const Index jend = std::min(n, j0 + kBlockN);
    for (Index k0 = 0; k0 < k; k0 += kBlockK) {
      const Index kend = std::min(k, k0 + kBlockK);
      for (Index i = 0; i < m; ++i) {
        double* ci = c + i * ldc;
        const double* ai = a + i * lda;
        for (Index kk = k0; kk < kend; ++kk) {
          const double aik = ai[kk];
          const double* bk = b + kk * ldb;
          for (Index j = j0; j < jend; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  }
}

// C = Aᵀ·B with A stored k×m: same blocked saxpy structure, broadcasting
// A's column entry a(kk, i) instead of the row entry.
void gemm_tn(Index m, Index n, Index k, const double* a, Index lda,
             const double* b, Index ldb, double* c, Index ldc) {
  zero_rows(m, n, c, ldc);
  for (Index j0 = 0; j0 < n; j0 += kBlockN) {
    const Index jend = std::min(n, j0 + kBlockN);
    for (Index k0 = 0; k0 < k; k0 += kBlockK) {
      const Index kend = std::min(k, k0 + kBlockK);
      for (Index i = 0; i < m; ++i) {
        double* ci = c + i * ldc;
        for (Index kk = k0; kk < kend; ++kk) {
          const double aki = a[kk * lda + i];
          const double* bk = b + kk * ldb;
          for (Index j = j0; j < jend; ++j) ci[j] += aki * bk[j];
        }
      }
    }
  }
}

// C = A·Bᵀ with B stored n×k: rows of both operands are contiguous, so
// each element is a straight dot product.
void gemm_nt(Index m, Index n, Index k, const double* a, Index lda,
             const double* b, Index ldb, double* c, Index ldc) {
  for (Index i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    for (Index j = 0; j < n; ++j) {
      const double* bj = b + j * ldb;
      double sum = 0.0;
      for (Index kk = 0; kk < k; ++kk) sum += ai[kk] * bj[kk];
      ci[j] = sum;
    }
  }
}

void gemv_n(Index m, Index n, const double* a, Index lda, const double* x,
            double* y) {
  for (Index i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double sum = 0.0;
    for (Index j = 0; j < n; ++j) sum += ai[j] * x[j];
    y[i] = sum;
  }
}

void gemv_t(Index m, Index n, const double* a, Index lda, const double* x,
            double* y) {
  std::fill_n(y, n, 0.0);
  for (Index i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    const double xi = x[i];
    for (Index j = 0; j < n; ++j) y[j] += ai[j] * xi;
  }
}

}  // namespace

const KernelTable& scalar_kernels() {
  static const KernelTable table{"scalar", gemm_nn, gemm_tn,
                                 gemm_nt, gemv_n,  gemv_t};
  return table;
}

}  // namespace senkf::linalg::kernels
