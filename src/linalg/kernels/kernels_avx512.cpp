// AVX-512 (F+DQ) instantiation of the generic kernel plane — the only
// translation unit that may contain AVX-512 instructions; CMake compiles
// it with per-file `-mavx512f -mavx512dq`.  dispatch.cpp checks CPUID
// before routing here, so the same binary runs on narrower x86 hosts.
// Without AVX-512 toolchain support the implementation compiles away and
// avx512_kernels() returns nullptr.
#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/simdvec.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include "linalg/kernels/kernels_impl.hpp"

namespace senkf::linalg::kernels {

const KernelTable* avx512_kernels() {
  static const KernelTable table = impl::make_table<Avx512Ops>("avx512");
  return &table;
}

}  // namespace senkf::linalg::kernels

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace senkf::linalg::kernels {

const KernelTable* avx512_kernels() { return nullptr; }

}  // namespace senkf::linalg::kernels

#endif
