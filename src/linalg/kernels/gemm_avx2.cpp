// AVX2 + FMA kernels.  This is the only translation unit in the library
// that may contain AVX2 instructions; CMake compiles it with per-file
// `-mavx2 -mfma` (the rest of the build stays at the base ISA so the
// binary still runs on non-AVX2 hosts — dispatch.cpp checks CPUID before
// ever calling into this file).  On toolchains/architectures without
// AVX2 the whole implementation compiles away and avx2_kernels() returns
// nullptr.
//
// GEMM structure: the same (jc, kc) cache blocks as gemm_scalar.cpp with
// 4×8 (rows × columns) register tiles inside — each C element's
// k-reduction lives in one ymm lane accumulated in ascending-k order, so
// results match the scalar kernels to FMA rounding.  A is addressed
// through (row, k) strides, which lets the nn (A row-major) and tn (A
// column-of-kᵀ) products share every micro-kernel.
#include "linalg/kernels/kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

namespace senkf::linalg::kernels {
namespace {

void zero_rows(Index m, Index n, double* c, Index ldc) {
  for (Index i = 0; i < m; ++i) std::fill_n(c + i * ldc, n, 0.0);
}

double hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

// C[r][0..7] += Σ_kk A(r, kk) · B(kk, 0..7) for r = 0..3, with A(r, kk)
// at a[r·ars + kk·aks]; b and c are pre-offset to the tile's column.
void tile4x8(Index k0, Index kend, const double* a, Index ars, Index aks,
             const double* b, Index ldb, double* c, Index ldc) {
  __m256d c00 = _mm256_loadu_pd(c + 0 * ldc);
  __m256d c01 = _mm256_loadu_pd(c + 0 * ldc + 4);
  __m256d c10 = _mm256_loadu_pd(c + 1 * ldc);
  __m256d c11 = _mm256_loadu_pd(c + 1 * ldc + 4);
  __m256d c20 = _mm256_loadu_pd(c + 2 * ldc);
  __m256d c21 = _mm256_loadu_pd(c + 2 * ldc + 4);
  __m256d c30 = _mm256_loadu_pd(c + 3 * ldc);
  __m256d c31 = _mm256_loadu_pd(c + 3 * ldc + 4);
  for (Index kk = k0; kk < kend; ++kk) {
    const double* bk = b + kk * ldb;
    const __m256d b0 = _mm256_loadu_pd(bk);
    const __m256d b1 = _mm256_loadu_pd(bk + 4);
    const double* ak = a + kk * aks;
    const __m256d a0 = _mm256_set1_pd(ak[0 * ars]);
    c00 = _mm256_fmadd_pd(a0, b0, c00);
    c01 = _mm256_fmadd_pd(a0, b1, c01);
    const __m256d a1 = _mm256_set1_pd(ak[1 * ars]);
    c10 = _mm256_fmadd_pd(a1, b0, c10);
    c11 = _mm256_fmadd_pd(a1, b1, c11);
    const __m256d a2 = _mm256_set1_pd(ak[2 * ars]);
    c20 = _mm256_fmadd_pd(a2, b0, c20);
    c21 = _mm256_fmadd_pd(a2, b1, c21);
    const __m256d a3 = _mm256_set1_pd(ak[3 * ars]);
    c30 = _mm256_fmadd_pd(a3, b0, c30);
    c31 = _mm256_fmadd_pd(a3, b1, c31);
  }
  _mm256_storeu_pd(c + 0 * ldc, c00);
  _mm256_storeu_pd(c + 0 * ldc + 4, c01);
  _mm256_storeu_pd(c + 1 * ldc, c10);
  _mm256_storeu_pd(c + 1 * ldc + 4, c11);
  _mm256_storeu_pd(c + 2 * ldc, c20);
  _mm256_storeu_pd(c + 2 * ldc + 4, c21);
  _mm256_storeu_pd(c + 3 * ldc, c30);
  _mm256_storeu_pd(c + 3 * ldc + 4, c31);
}

// Single-row edition of tile4x8 for the m % 4 remainder rows.
void tile1x8(Index k0, Index kend, const double* a, Index aks,
             const double* b, Index ldb, double* c) {
  __m256d c0 = _mm256_loadu_pd(c);
  __m256d c1 = _mm256_loadu_pd(c + 4);
  for (Index kk = k0; kk < kend; ++kk) {
    const double* bk = b + kk * ldb;
    const __m256d av = _mm256_set1_pd(a[kk * aks]);
    c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bk), c0);
    c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bk + 4), c1);
  }
  _mm256_storeu_pd(c, c0);
  _mm256_storeu_pd(c + 4, c1);
}

// Shared driver for C = op(A)·B: op selected by A's (row, k) strides —
// (lda, 1) for A as given, (1, lda) for Aᵀ of a k×m matrix.
void gemm_driver(Index m, Index n, Index k, const double* a, Index ars,
                 Index aks, const double* b, Index ldb, double* c,
                 Index ldc) {
  zero_rows(m, n, c, ldc);
  for (Index j0 = 0; j0 < n; j0 += kBlockN) {
    const Index jend = std::min(n, j0 + kBlockN);
    for (Index k0 = 0; k0 < k; k0 += kBlockK) {
      const Index kend = std::min(k, k0 + kBlockK);
      Index i = 0;
      for (; i + 4 <= m; i += 4) {
        const double* ai = a + i * ars;
        Index j = j0;
        for (; j + 8 <= jend; j += 8) {
          tile4x8(k0, kend, ai, ars, aks, b + j, ldb, c + i * ldc + j, ldc);
        }
        for (; j < jend; ++j) {
          for (Index r = 0; r < 4; ++r) {
            double sum = c[(i + r) * ldc + j];
            for (Index kk = k0; kk < kend; ++kk) {
              sum += ai[r * ars + kk * aks] * b[kk * ldb + j];
            }
            c[(i + r) * ldc + j] = sum;
          }
        }
      }
      for (; i < m; ++i) {
        const double* ai = a + i * ars;
        Index j = j0;
        for (; j + 8 <= jend; j += 8) {
          tile1x8(k0, kend, ai, aks, b + j, ldb, c + i * ldc + j);
        }
        for (; j < jend; ++j) {
          double sum = c[i * ldc + j];
          for (Index kk = k0; kk < kend; ++kk) {
            sum += ai[kk * aks] * b[kk * ldb + j];
          }
          c[i * ldc + j] = sum;
        }
      }
    }
  }
}

void gemm_nn(Index m, Index n, Index k, const double* a, Index lda,
             const double* b, Index ldb, double* c, Index ldc) {
  gemm_driver(m, n, k, a, lda, 1, b, ldb, c, ldc);
}

void gemm_tn(Index m, Index n, Index k, const double* a, Index lda,
             const double* b, Index ldb, double* c, Index ldc) {
  gemm_driver(m, n, k, a, 1, lda, b, ldb, c, ldc);
}

// C = A·Bᵀ: both operand rows are contiguous, so vectorize the dot
// products over k, four B rows at a time to reuse each A load.
void gemm_nt(Index m, Index n, Index k, const double* a, Index lda,
             const double* b, Index ldb, double* c, Index ldc) {
  for (Index i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + (j + 0) * ldb;
      const double* b1 = b + (j + 1) * ldb;
      const double* b2 = b + (j + 2) * ldb;
      const double* b3 = b + (j + 3) * ldb;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      Index kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        const __m256d av = _mm256_loadu_pd(ai + kk);
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b0 + kk), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b1 + kk), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b2 + kk), acc2);
        acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b3 + kk), acc3);
      }
      double s0 = hsum(acc0), s1 = hsum(acc1);
      double s2 = hsum(acc2), s3 = hsum(acc3);
      for (; kk < k; ++kk) {
        const double av = ai[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      ci[j] = s0;
      ci[j + 1] = s1;
      ci[j + 2] = s2;
      ci[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const double* bj = b + j * ldb;
      __m256d acc = _mm256_setzero_pd();
      Index kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(ai + kk),
                              _mm256_loadu_pd(bj + kk), acc);
      }
      double sum = hsum(acc);
      for (; kk < k; ++kk) sum += ai[kk] * bj[kk];
      ci[j] = sum;
    }
  }
}

void gemv_n(Index m, Index n, const double* a, Index lda, const double* x,
            double* y) {
  for (Index i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    __m256d acc = _mm256_setzero_pd();
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      acc = _mm256_fmadd_pd(_mm256_loadu_pd(ai + j), _mm256_loadu_pd(x + j),
                            acc);
    }
    double sum = hsum(acc);
    for (; j < n; ++j) sum += ai[j] * x[j];
    y[i] = sum;
  }
}

void gemv_t(Index m, Index n, const double* a, Index lda, const double* x,
            double* y) {
  std::fill_n(y, n, 0.0);
  for (Index i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    const __m256d xi = _mm256_set1_pd(x[i]);
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d yj = _mm256_fmadd_pd(xi, _mm256_loadu_pd(ai + j),
                                         _mm256_loadu_pd(y + j));
      _mm256_storeu_pd(y + j, yj);
    }
    for (; j < n; ++j) y[j] += ai[j] * x[i];
  }
}

}  // namespace

const KernelTable* avx2_kernels() {
  static const KernelTable table{"avx2",  gemm_nn, gemm_tn,
                                 gemm_nt, gemv_n,  gemv_t};
  return &table;
}

}  // namespace senkf::linalg::kernels

#else  // !(__AVX2__ && __FMA__)

namespace senkf::linalg::kernels {

const KernelTable* avx2_kernels() { return nullptr; }

}  // namespace senkf::linalg::kernels

#endif
