// NEON (aarch64) instantiation of the generic kernel plane — the only
// translation unit that may contain NEON intrinsics.  On aarch64 NEON is
// part of the base ISA, so no per-file flags are needed and the table is
// always usable there; on other architectures the implementation
// compiles away and neon_kernels() returns nullptr.
#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/simdvec.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include "linalg/kernels/kernels_impl.hpp"

namespace senkf::linalg::kernels {

const KernelTable* neon_kernels() {
  static const KernelTable table = impl::make_table<NeonOps>("neon");
  return &table;
}

}  // namespace senkf::linalg::kernels

#else  // !(__aarch64__ && __ARM_NEON)

namespace senkf::linalg::kernels {

const KernelTable* neon_kernels() { return nullptr; }

}  // namespace senkf::linalg::kernels

#endif
