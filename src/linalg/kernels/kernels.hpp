// Cache-blocked GEMM/GEMV micro-kernels behind runtime ISA dispatch.
//
// Following the hmmer `simdvec` layout: every ISA-specific instruction
// lives in exactly one translation unit per ISA (`gemm_scalar.cpp`,
// `gemm_avx2.cpp`, compiled with per-file `-mavx2 -mfma`), and callers go
// through a `KernelTable` of raw-pointer kernels resolved once at startup
// by CPUID (`dispatch.cpp`).  `ops.cpp` is the only caller; the Matrix /
// Vector API above it is unchanged, so every EnKF variant picks up the
// fast kernels with zero call-site churn.
//
// Contract shared by all implementations:
//   * row-major storage with explicit leading dimensions (lda/ldb/ldc);
//   * C (or y) is *overwritten*, never accumulated into, and must not
//     alias A, B or x;
//   * any dimension may be zero (the output is zero-filled);
//   * for each output element the reduction over k runs in ascending-k
//     order in every implementation, so scalar and SIMD kernels agree to
//     rounding (FMA contraction and lane-split dot reductions are the only
//     divergence — bounded well below the 1e-12 relative tolerance the
//     equivalence tests assert).
#pragma once

#include <cstddef>

namespace senkf::linalg::kernels {

using Index = std::size_t;

/// One ISA's worth of kernels.  All matrices are row-major.
struct KernelTable {
  const char* name;  ///< "scalar" or "avx2" (dispatch / test reporting)

  /// C(m×n) = A(m×k) · B(k×n).
  void (*gemm_nn)(Index m, Index n, Index k, const double* a, Index lda,
                  const double* b, Index ldb, double* c, Index ldc);

  /// C(m×n) = Aᵀ · B with A stored k×m (never materializes Aᵀ).
  void (*gemm_tn)(Index m, Index n, Index k, const double* a, Index lda,
                  const double* b, Index ldb, double* c, Index ldc);

  /// C(m×n) = A · Bᵀ with B stored n×k (never materializes Bᵀ).
  void (*gemm_nt)(Index m, Index n, Index k, const double* a, Index lda,
                  const double* b, Index ldb, double* c, Index ldc);

  /// y(m) = A(m×n) · x(n).
  void (*gemv_n)(Index m, Index n, const double* a, Index lda,
                 const double* x, double* y);

  /// y(n) = Aᵀ · x(m) with A stored m×n.
  void (*gemv_t)(Index m, Index n, const double* a, Index lda,
                 const double* x, double* y);
};

/// Cache-block sizes shared by every implementation.  The j/k blocking
/// bounds the live B panel (kBlockK × kBlockN doubles ≈ 2 MB) while the
/// register tiles keep each C element's k-reduction in a single
/// accumulator per k-block, preserving the ascending-k order contract.
inline constexpr Index kBlockK = 512;
inline constexpr Index kBlockN = 512;

/// The portable reference implementation (always available).
const KernelTable& scalar_kernels();

/// The AVX2+FMA implementation, or nullptr when this binary was built
/// without AVX2 support.  Callers must additionally check
/// `cpu_supports_avx2()` before using it (see dispatch.hpp).
const KernelTable* avx2_kernels();

}  // namespace senkf::linalg::kernels
