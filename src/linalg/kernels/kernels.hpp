// The multi-ISA kernel plane behind the EnKF analysis hot spots.
//
// Following the hmmer `simdvec` layout: every ISA-specific instruction
// lives in exactly one translation unit per ISA (`kernels_scalar.cpp`,
// `kernels_avx2.cpp`, `kernels_avx512.cpp`, `kernels_neon.cpp`, each
// compiled with per-file ISA flags), all instantiating the single generic
// implementation in kernels_impl.hpp over that ISA's vector policy
// (simdvec.hpp).  Callers go through a `KernelTable` of raw-pointer
// kernels resolved once at startup by CPUID (`dispatch.cpp`); the
// Matrix / Vector API above it is unchanged, so every EnKF variant picks
// up the fast kernels with zero call-site churn.
//
// Contract shared by all implementations:
//   * row-major storage with explicit leading dimensions (lda/ldb/ldc);
//   * GEMM/GEMV outputs are *overwritten*, never accumulated into, and
//     must not alias the inputs; potrf/trsm operate in place;
//   * any dimension may be zero (outputs are zero-filled);
//   * for each output element the k-reduction runs in ascending-k order
//     in every implementation, so scalar and SIMD kernels agree to
//     rounding (FMA contraction and lane-split dot reductions are the
//     only divergence — bounded well below the 1e-12 relative tolerance
//     the equivalence tests assert);
//   * padded operands (ld >= padded_stride(n, width), trailing entries
//     zero — see simdvec.hpp) let kernels skip column edge handling; the
//     pad-zero invariant is preserved by every kernel.
#pragma once

#include <cstddef>

#include "linalg/kernels/simdvec.hpp"

namespace senkf::linalg::kernels {

/// One ISA's worth of kernels.  All matrices are row-major.
struct KernelTable {
  const char* name;  ///< "scalar", "avx2", "avx512" or "neon"
  Index width;       ///< vector width in doubles (1, 2, 4 or 8)

  /// C(m×n) = A(m×k) · B(k×n).
  void (*gemm_nn)(Index m, Index n, Index k, const double* a, Index lda,
                  const double* b, Index ldb, double* c, Index ldc);

  /// C(m×n) = Aᵀ · B with A stored k×m (never materializes Aᵀ).
  void (*gemm_tn)(Index m, Index n, Index k, const double* a, Index lda,
                  const double* b, Index ldb, double* c, Index ldc);

  /// C(m×n) = A · Bᵀ with B stored n×k (never materializes Bᵀ).
  void (*gemm_nt)(Index m, Index n, Index k, const double* a, Index lda,
                  const double* b, Index ldb, double* c, Index ldc);

  /// y(m) = A(m×n) · x(n).
  void (*gemv_n)(Index m, Index n, const double* a, Index lda,
                 const double* x, double* y);

  /// y(n) = Aᵀ · x(m) with A stored m×n.
  void (*gemv_t)(Index m, Index n, const double* a, Index lda,
                 const double* x, double* y);

  /// Blocked in-place SPD Cholesky: overwrites the lower triangle of
  /// A(n×n) with L such that A = L·Lᵀ.  Entries above the diagonal are
  /// neither read nor written.  Returns the index of the first
  /// non-positive pivot, or -1 on success.
  std::ptrdiff_t (*potrf)(Index n, double* a, Index lda);

  /// Forward triangular solve: overwrites B(n×nrhs) with X solving
  /// L·X = B, L lower-triangular with non-zero diagonal (not checked —
  /// wrappers validate; a zero diagonal yields inf/nan).
  void (*trsm_lln)(Index n, Index nrhs, const double* l, Index ldl,
                   double* b, Index ldb);

  /// Backward triangular solve: overwrites B(n×nrhs) with X solving
  /// Lᵀ·X = B.
  void (*trsm_llt)(Index n, Index nrhs, const double* l, Index ldl,
                   double* b, Index ldb);

  /// y[0..n) += alpha · x[0..n) (contiguous).
  void (*axpy)(Index n, double alpha, const double* x, double* y);

  /// x[0..n) *= alpha (contiguous).
  void (*scale)(Index n, double alpha, double* x);

  /// Row r of A(m×n, lda) *= d[r] — the R⁻¹ weighting sweep.
  void (*row_scale)(Index m, Index n, const double* d, double* a, Index lda);

  /// Fused observation-space innovation: out[r][j] = (ys[r][j] −
  /// hx[r][j]) · rinv[r], i.e. D = R⁻¹(Yˢ − H X̄ᵇ) in one pass.
  void (*innovation)(Index m, Index n, const double* ys, Index ldy,
                     const double* hx, Index ldh, const double* rinv,
                     double* out, Index ldo);

  /// Σ x[i]·y[i] over contiguous spans (ascending-i lane-split sum).
  double (*dot)(Index n, const double* x, const double* y);

  /// Σ values[s] · x[cols[s]] — the sparse-lower column sweep of the
  /// modified-Cholesky estimator (indexed gather dot product).
  double (*gather_dot)(Index nnz, const double* values, const Index* cols,
                       const double* x);
};

/// Cache-block sizes shared by every implementation.  The j/k blocking
/// bounds the live B panel (kBlockK × kBlockN doubles ≈ 2 MB) while the
/// register tiles keep each C element's k-reduction in a single
/// accumulator per k-block, preserving the ascending-k order contract.
inline constexpr Index kBlockK = 512;
inline constexpr Index kBlockN = 512;

/// Column-panel width of the blocked Cholesky (left-looking dots).
inline constexpr Index kPotrfBlock = 64;

/// The portable reference implementation (always available).
const KernelTable& scalar_kernels();

/// The AVX2+FMA implementation, or nullptr when this binary was built
/// without AVX2 support.  Callers must additionally check
/// `cpu_supports_avx2()` before using it (see dispatch.hpp).
const KernelTable* avx2_kernels();

/// The AVX-512 (F+DQ) implementation, or nullptr when this binary was
/// built without AVX-512 support.  Gate on `cpu_supports_avx512()`.
const KernelTable* avx512_kernels();

/// The NEON (aarch64) implementation, or nullptr on non-ARM builds.
const KernelTable* neon_kernels();

}  // namespace senkf::linalg::kernels
