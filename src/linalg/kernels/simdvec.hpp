// simdvec: the shared SIMD vector environment (hmmer `simdvec` discipline).
//
// Everything ISA-independent that vectorized *and* non-vectorized code
// needs — vector widths, padded-stride math, the pad-zero layout
// contract — lives in the top half of this header and is safe to include
// anywhere (matrix.hpp uses it for padded allocation).
//
// The bottom half defines one `...Ops` policy struct per vector ISA, each
// guarded by that ISA's compiler predefines, so the struct only exists in
// translation units compiled with the matching per-file flags
// (kernels_avx2.cpp gets -mavx2 -mfma, kernels_avx512.cpp gets
// -mavx512f -mavx512dq, kernels_neon.cpp compiles it on aarch64 where
// NEON is baseline).  The single generic implementation of every kernel
// (kernels_impl.hpp) is templated over these policies: adding an ISA is
// one Ops struct + one four-line translation unit + one CMake per-file
// flag line — no kernel logic is duplicated.
//
// ## Padded ("striped") layout contract
//
// A row-major operand with logical row width `n` and leading dimension
// `ld` is *padded for width W* when `ld >= padded_stride(n, W)`.  For
// padded operands the kernels drop all column edge handling: they may
// read and write the trailing `padded_stride(n, W) - n` entries of every
// row.  In exchange the caller guarantees those entries are zero on
// entry; every kernel preserves the invariant (pad lanes only ever see
// 0·x + 0 style arithmetic), so padded matrices can flow through
// arbitrarily long kernel chains.  Compact operands (`ld == n`, e.g.
// wire-format views or caller-owned raw buffers) take the remainder-loop
// path instead — same results, slightly more edge code.
#pragma once

#include <cstddef>

namespace senkf::linalg::kernels {

using Index = std::size_t;

/// Vector widths in doubles per register, one per supported ISA.
inline constexpr Index kScalarWidth = 1;
inline constexpr Index kNeonWidth = 2;   // 128-bit
inline constexpr Index kAvx2Width = 4;   // 256-bit
inline constexpr Index kAvx512Width = 8; // 512-bit

/// The widest vector any supported ISA uses, in doubles.  Padding to this
/// width is always safe regardless of which table dispatch later picks.
inline constexpr Index kMaxVectorWidth = kAvx512Width;

/// Rounds a logical row width up to a whole number of W-wide vectors.
constexpr Index padded_stride(Index n, Index width) {
  return width <= 1 ? n : (n + width - 1) / width * width;
}

}  // namespace senkf::linalg::kernels

// ---------------------------------------------------------------------------
// Per-ISA vector policy structs.  Only visible where the ISA is enabled.
//
// The interface every Ops struct implements:
//   using vd;                      // one register of kWidth doubles
//   static constexpr Index kWidth;
//   static vd zero();
//   static vd set1(double);
//   static vd loadu(const double*);
//   static void storeu(double*, vd);
//   static vd add/sub/mul(vd, vd);
//   static vd div(vd, vd);
//   static vd fmadd(vd a, vd b, vd c);   //  a*b + c
//   static vd fnmadd(vd a, vd b, vd c);  // -a*b + c
//   static double hsum(vd);              // lane sum (lo-to-hi pairing)
//   static vd gather(const double* base, const Index* idx);
// ---------------------------------------------------------------------------

namespace senkf::linalg::kernels {

/// Portable reference policy: one double per "vector".  The generic
/// kernels instantiated with this are the semantics every SIMD table
/// must match to 1e-12 relative tolerance.
struct ScalarOps {
  using vd = double;
  static constexpr Index kWidth = kScalarWidth;
  static vd zero() { return 0.0; }
  static vd set1(double x) { return x; }
  static vd loadu(const double* p) { return *p; }
  static void storeu(double* p, vd v) { *p = v; }
  static vd add(vd a, vd b) { return a + b; }
  static vd sub(vd a, vd b) { return a - b; }
  static vd mul(vd a, vd b) { return a * b; }
  static vd div(vd a, vd b) { return a / b; }
  static vd fmadd(vd a, vd b, vd c) { return a * b + c; }
  static vd fnmadd(vd a, vd b, vd c) { return c - a * b; }
  static double hsum(vd v) { return v; }
  static vd gather(const double* base, const Index* idx) {
    return base[idx[0]];
  }
};

}  // namespace senkf::linalg::kernels

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace senkf::linalg::kernels {

struct Avx2Ops {
  using vd = __m256d;
  static constexpr Index kWidth = kAvx2Width;
  static vd zero() { return _mm256_setzero_pd(); }
  static vd set1(double x) { return _mm256_set1_pd(x); }
  static vd loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, vd v) { _mm256_storeu_pd(p, v); }
  static vd add(vd a, vd b) { return _mm256_add_pd(a, b); }
  static vd sub(vd a, vd b) { return _mm256_sub_pd(a, b); }
  static vd mul(vd a, vd b) { return _mm256_mul_pd(a, b); }
  static vd div(vd a, vd b) { return _mm256_div_pd(a, b); }
  static vd fmadd(vd a, vd b, vd c) { return _mm256_fmadd_pd(a, b, c); }
  static vd fnmadd(vd a, vd b, vd c) { return _mm256_fnmadd_pd(a, b, c); }
  static double hsum(vd v) {
    __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    lo = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
  }
  static vd gather(const double* base, const Index* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm256_i64gather_pd(base, vi, 8);
  }
};

}  // namespace senkf::linalg::kernels

#endif  // __AVX2__ && __FMA__

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace senkf::linalg::kernels {

struct Avx512Ops {
  using vd = __m512d;
  static constexpr Index kWidth = kAvx512Width;
  static vd zero() { return _mm512_setzero_pd(); }
  static vd set1(double x) { return _mm512_set1_pd(x); }
  static vd loadu(const double* p) { return _mm512_loadu_pd(p); }
  static void storeu(double* p, vd v) { _mm512_storeu_pd(p, v); }
  static vd add(vd a, vd b) { return _mm512_add_pd(a, b); }
  static vd sub(vd a, vd b) { return _mm512_sub_pd(a, b); }
  static vd mul(vd a, vd b) { return _mm512_mul_pd(a, b); }
  static vd div(vd a, vd b) { return _mm512_div_pd(a, b); }
  static vd fmadd(vd a, vd b, vd c) { return _mm512_fmadd_pd(a, b, c); }
  static vd fnmadd(vd a, vd b, vd c) { return _mm512_fnmadd_pd(a, b, c); }
  static double hsum(vd v) { return _mm512_reduce_add_pd(v); }
  static vd gather(const double* base, const Index* idx) {
    const __m512i vi = _mm512_loadu_si512(idx);
    return _mm512_i64gather_pd(vi, base, 8);
  }
};

}  // namespace senkf::linalg::kernels

#endif  // __AVX512F__ && __AVX512DQ__

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace senkf::linalg::kernels {

struct NeonOps {
  using vd = float64x2_t;
  static constexpr Index kWidth = kNeonWidth;
  static vd zero() { return vdupq_n_f64(0.0); }
  static vd set1(double x) { return vdupq_n_f64(x); }
  static vd loadu(const double* p) { return vld1q_f64(p); }
  static void storeu(double* p, vd v) { vst1q_f64(p, v); }
  static vd add(vd a, vd b) { return vaddq_f64(a, b); }
  static vd sub(vd a, vd b) { return vsubq_f64(a, b); }
  static vd mul(vd a, vd b) { return vmulq_f64(a, b); }
  static vd div(vd a, vd b) { return vdivq_f64(a, b); }
  static vd fmadd(vd a, vd b, vd c) { return vfmaq_f64(c, a, b); }
  static vd fnmadd(vd a, vd b, vd c) { return vfmsq_f64(c, a, b); }
  static double hsum(vd v) {
    return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
  }
  static vd gather(const double* base, const Index* idx) {
    vd v = vdupq_n_f64(base[idx[0]]);
    return vsetq_lane_f64(base[idx[1]], v, 1);
  }
};

}  // namespace senkf::linalg::kernels

#endif  // __aarch64__ && __ARM_NEON
