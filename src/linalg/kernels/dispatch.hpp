// Runtime kernel dispatch (CPUID + SENKF_KERNEL override).
//
// Selection order:
//   1. `SENKF_KERNEL=scalar` forces the portable kernels (testing / triage);
//   2. `SENKF_KERNEL=avx2|avx512|neon` requests that ISA's kernels,
//      falling back to scalar with a warning when the binary or the CPU
//      lacks them — so a test matrix that always sets every value stays
//      green on any host;
//   3. unset / `auto`: the widest usable ISA — AVX-512, then AVX2, then
//      NEON, then scalar.
//
// `active_kernels()` caches the decision on first use and records it in
// the metrics registry exactly once per process: the
// `kernels.dispatch.<name>` counter marks which table won and the
// `kernels.active` gauge holds its vector width in doubles (1 = scalar,
// 2 = neon, 4 = avx2, 8 = avx512), so run reports carry the resolved
// ISA.  `resolve_kernels` is the pure resolution step — no counters —
// exposed so tests can exercise every branch in one process without
// re-execing or perturbing the accounting.
#pragma once

#include "linalg/kernels/kernels.hpp"

namespace senkf::linalg::kernels {

/// True when the running CPU reports AVX2 and FMA.
bool cpu_supports_avx2();

/// True when the running CPU reports AVX-512 F and DQ.
bool cpu_supports_avx512();

/// True when the running CPU has NEON (always, on aarch64 builds).
bool cpu_supports_neon();

/// Resolves a requested implementation name (nullptr or "auto" = pick the
/// widest available).  Unknown names throw InvalidArgument so typos in
/// SENKF_KERNEL fail loudly instead of silently benchmarking the wrong
/// kernels.  Pure: never touches the metrics registry.
const KernelTable& resolve_kernels(const char* requested);

/// The process-wide kernel table: resolve_kernels($SENKF_KERNEL), cached
/// on first call.  Every linalg entry point routes through this, so all
/// EnKF variants in a process use the same kernels (a precondition for
/// their bit-identical-analysis guarantee).  Padded Matrix allocation
/// derives its stride from this table's width.
const KernelTable& active_kernels();

}  // namespace senkf::linalg::kernels
