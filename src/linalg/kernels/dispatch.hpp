// Runtime kernel dispatch (CPUID + SENKF_KERNEL override).
//
// Selection order:
//   1. `SENKF_KERNEL=scalar` forces the portable kernels (testing / triage);
//   2. `SENKF_KERNEL=avx2` requests the AVX2 kernels, falling back to
//      scalar with a warning when the binary or the CPU lacks them — so a
//      test matrix that always sets both values stays green on any host;
//   3. unset / `auto`: AVX2 when compiled in and the CPU reports
//      AVX2+FMA, scalar otherwise.
//
// `active_kernels()` caches the decision on first use; `resolve_kernels`
// is the pure resolution step, exposed so tests can exercise every branch
// in one process without re-execing.
#pragma once

#include "linalg/kernels/kernels.hpp"

namespace senkf::linalg::kernels {

/// True when the running CPU reports AVX2 and FMA.
bool cpu_supports_avx2();

/// Resolves a requested implementation name (nullptr or "auto" = pick the
/// best available).  Unknown names throw InvalidArgument so typos in
/// SENKF_KERNEL fail loudly instead of silently benchmarking the wrong
/// kernels.
const KernelTable& resolve_kernels(const char* requested);

/// The process-wide kernel table: resolve_kernels($SENKF_KERNEL), cached
/// on first call.  Every linalg entry point routes through this, so all
/// EnKF variants in a process use the same kernels (a precondition for
/// their bit-identical-analysis guarantee).
const KernelTable& active_kernels();

}  // namespace senkf::linalg::kernels
