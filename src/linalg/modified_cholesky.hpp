// Modified-Cholesky estimation of the inverse background-error covariance.
//
// P-EnKF (Nino-Ruiz, Sandu & Deng 2017/2018, cited as [23][24] in the
// paper) replaces the rank-deficient ensemble covariance B = UUᵀ/(N−1)
// with a well-conditioned sparse estimate of B̂⁻¹ built from the modified
// Cholesky decomposition of Bickel & Levina:
//
//   B̂⁻¹ = Lᵀ D⁻¹ L,
//
// where L is unit lower-triangular whose row i holds the negated
// coefficients of the regression of variable i onto its *localized
// predecessors* (variables earlier in the ordering and within the radius
// of influence), and D is the diagonal of residual variances.  Sparsity of
// L comes from localization: row i only has entries in columns pred(i).
#pragma once

#include <functional>
#include <vector>

#include "linalg/matrix.hpp"

namespace senkf::linalg {

/// Result of the modified Cholesky estimation.  `l` is unit
/// lower-triangular (stored dense for the small local problems EnKF
/// solves), `d` holds the residual variances.
struct ModifiedCholesky {
  Matrix l;  ///< unit lower-triangular regression factor
  Vector d;  ///< residual variances (diagonal of D)

  Index dim() const { return d.size(); }

  /// Dense B̂⁻¹ = Lᵀ D⁻¹ L.
  Matrix inverse_covariance() const;

  /// y = B̂⁻¹ x computed from the factors without forming B̂⁻¹.
  Vector apply_inverse(const Vector& x) const;

  /// Y = B̂⁻¹ X column-wise from the factors.
  Matrix apply_inverse(const Matrix& x) const;
};

/// Predecessor oracle: given variable i, returns indices j < i that are
/// within the localization neighbourhood of i (any order, no duplicates).
using PredecessorFn = std::function<std::vector<Index>(Index)>;

/// Estimates B̂⁻¹ from ensemble anomalies.
///
/// `anomalies` is the n×N matrix U of mean-subtracted ensemble members
/// (one row per model variable, one column per member).  `predecessors`
/// encodes localization.  `ridge` regularizes each small regression's
/// normal equations, which keeps the estimate well-defined even when the
/// neighbourhood is larger than the ensemble size (the situation that
/// motivates the method).
ModifiedCholesky estimate_inverse_covariance(const Matrix& anomalies,
                                             const PredecessorFn& predecessors,
                                             double ridge = 1e-8);

/// Convenience predecessor oracle for a banded ordering: pred(i) are the
/// up-to-`bandwidth` immediately preceding variables.
PredecessorFn banded_predecessors(Index bandwidth);

}  // namespace senkf::linalg
