// Modified-Cholesky estimation of the inverse background-error covariance.
//
// P-EnKF (Nino-Ruiz, Sandu & Deng 2017/2018, cited as [23][24] in the
// paper) replaces the rank-deficient ensemble covariance B = UUᵀ/(N−1)
// with a well-conditioned sparse estimate of B̂⁻¹ built from the modified
// Cholesky decomposition of Bickel & Levina:
//
//   B̂⁻¹ = Lᵀ D⁻¹ L,
//
// where L is unit lower-triangular whose row i holds the negated
// coefficients of the regression of variable i onto its *localized
// predecessors* (variables earlier in the ordering and within the radius
// of influence), and D is the diagonal of residual variances.  Sparsity of
// L comes from localization: row i only has entries in columns pred(i).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "support/arena.hpp"

namespace senkf::linalg {

/// Result of the modified Cholesky estimation.  `l` is unit
/// lower-triangular (stored dense for the small local problems EnKF
/// solves), `d` holds the residual variances.
struct ModifiedCholesky {
  Matrix l;  ///< unit lower-triangular regression factor
  Vector d;  ///< residual variances (diagonal of D)

  Index dim() const { return d.size(); }

  /// Dense B̂⁻¹ = Lᵀ D⁻¹ L.
  Matrix inverse_covariance() const;

  /// Allocation-free B̂⁻¹ into caller-provided `out` (n×n), using an n×n
  /// work matrix `dinv_l` for D⁻¹L.  Bit-identical to
  /// inverse_covariance() when the strides match the owning layout.
  void inverse_covariance_into(Matrix& dinv_l, Matrix& out) const;

  /// y = B̂⁻¹ x computed from the factors without forming B̂⁻¹.
  Vector apply_inverse(const Vector& x) const;

  /// Y = B̂⁻¹ X column-wise from the factors.
  Matrix apply_inverse(const Matrix& x) const;
};

/// Predecessor oracle: given variable i, returns indices j < i that are
/// within the localization neighbourhood of i (any order, no duplicates).
using PredecessorFn = std::function<std::vector<Index>(Index)>;

/// Allocation-free predecessor oracle: implementations may place the
/// returned span in `scratch` (it stays valid until the caller rewinds)
/// or point at storage they own.
class PredecessorOracle {
 public:
  virtual ~PredecessorOracle() = default;
  virtual std::span<const Index> predecessors(Index i,
                                              support::Arena& scratch) = 0;
};

/// Estimates B̂⁻¹ from ensemble anomalies.
///
/// `anomalies` is the n×N matrix U of mean-subtracted ensemble members
/// (one row per model variable, one column per member).  `predecessors`
/// encodes localization.  `ridge` regularizes each small regression's
/// normal equations, which keeps the estimate well-defined even when the
/// neighbourhood is larger than the ensemble size (the situation that
/// motivates the method).
ModifiedCholesky estimate_inverse_covariance(const Matrix& anomalies,
                                             const PredecessorFn& predecessors,
                                             double ridge = 1e-8);

/// Allocation-free estimation into pre-shaped `out` (out.l n×n, out.d
/// length n; both fully overwritten).  Per-row temporaries (gram, rhs,
/// factor) come from `arena` under a mark/rewind bracket, so the arena's
/// in-use bytes are unchanged on return.  Bit-identical to the allocating
/// form above given the same predecessor sets.
void estimate_inverse_covariance_into(const Matrix& anomalies,
                                      PredecessorOracle& predecessors,
                                      double ridge, support::Arena& arena,
                                      ModifiedCholesky& out);

/// Convenience predecessor oracle for a banded ordering: pred(i) are the
/// up-to-`bandwidth` immediately preceding variables.
PredecessorFn banded_predecessors(Index bandwidth);

}  // namespace senkf::linalg
