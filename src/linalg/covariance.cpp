#include "linalg/covariance.hpp"

#include <cmath>

#include "linalg/ops.hpp"

namespace senkf::linalg {

Vector ensemble_mean(const Matrix& ensemble) {
  SENKF_REQUIRE(ensemble.cols() > 0, "ensemble_mean: empty ensemble");
  const double inv = 1.0 / static_cast<double>(ensemble.cols());
  Vector mean(ensemble.rows(), 0.0);
  for (Index i = 0; i < ensemble.rows(); ++i) {
    const auto row = ensemble.row(i);
    double sum = 0.0;
    for (const double v : row) sum += v;
    mean[i] = sum * inv;
  }
  return mean;
}

Matrix ensemble_anomalies(const Matrix& ensemble) {
  const Vector mean = ensemble_mean(ensemble);
  Matrix anomalies = ensemble;
  for (Index i = 0; i < ensemble.rows(); ++i) {
    auto row = anomalies.row(i);
    for (double& v : row) v -= mean[i];
  }
  return anomalies;
}

Matrix sample_covariance(const Matrix& ensemble) {
  SENKF_REQUIRE(ensemble.cols() >= 2,
                "sample_covariance: need at least 2 members");
  Matrix u = ensemble_anomalies(ensemble);
  Matrix b = multiply_a_bt(u, u);
  scale(b, 1.0 / static_cast<double>(ensemble.cols() - 1));
  return b;
}

double gaspari_cohn(double distance, double support_radius) {
  SENKF_REQUIRE(support_radius > 0.0, "gaspari_cohn: radius must be > 0");
  const double z = std::abs(distance) / support_radius;
  if (z >= 2.0) return 0.0;
  if (z <= 1.0) {
    return -0.25 * z * z * z * z * z + 0.5 * z * z * z * z +
           0.625 * z * z * z - (5.0 / 3.0) * z * z + 1.0;
  }
  return (1.0 / 12.0) * z * z * z * z * z - 0.5 * z * z * z * z +
         0.625 * z * z * z + (5.0 / 3.0) * z * z - 5.0 * z + 4.0 -
         (2.0 / 3.0) / z;
}

Matrix taper_covariance(const Matrix& covariance,
                        const std::function<double(Index, Index)>& distance,
                        double support_radius) {
  SENKF_REQUIRE(covariance.square(), "taper_covariance: matrix must be square");
  Matrix tapered = covariance;
  for (Index i = 0; i < covariance.rows(); ++i) {
    for (Index j = 0; j < covariance.cols(); ++j) {
      tapered(i, j) *= gaspari_cohn(distance(i, j), support_radius);
    }
  }
  return tapered;
}

}  // namespace senkf::linalg
