// Dense row-major matrix and vector types.
//
// The EnKF kernels only need a compact dense-linear-algebra core: this
// header provides value-semantic `Matrix` / `Vector` with bounds-checked
// element access in debug builds, plus cheap structural queries.  All
// numerical routines live in ops.hpp / cholesky.hpp / solve.hpp so the
// data type stays small.
//
// Layout: rows are contiguous, but the leading dimension (`stride()`)
// may exceed `cols()` — by default allocation rounds it up to the active
// kernel table's vector width so the SIMD kernels can use full-width
// loads and stores on every row.  The pad entries (columns cols()..
// stride()) are zero at construction and every routine in linalg keeps
// them zero (the "pad-zero invariant" — see kernels/simdvec.hpp), which
// is what lets kernels read them safely: pad lanes only ever contribute
// 0·x terms.  Code that needs the historical tightly-packed layout
// (wire-format staging, external libraries) builds with
// `Matrix::compact(...)`, which sets stride() == cols().
//
// Storage: a Matrix/Vector normally owns its buffer, but `scratch(...)`
// builds a non-owning one over caller storage (an arena span — see
// support/arena.hpp), which is how the analysis hot path gets
// allocation-free temporaries.  Scratch instances behave like values in
// every other way: copying one yields an owning deep copy, moving one
// carries the pointer.  The caller keeps the storage alive (and
// zero-initialized, to honor the pad-zero invariant) for the scratch
// object's lifetime.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace senkf::linalg {

using Index = std::size_t;

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  explicit Vector(Index size, double fill = 0.0)
      : size_(size), data_(size, fill), ptr_(data_.data()) {}
  Vector(std::initializer_list<double> values)
      : size_(values.size()), data_(values), ptr_(data_.data()) {}

  /// Non-owning vector over caller storage (e.g. an arena span).  The
  /// storage must stay alive and is used as-is (callers zero it first
  /// when the zero-filled constructor semantics are wanted).
  static Vector scratch(std::span<double> storage);

  Vector(const Vector& other)
      : size_(other.size_),
        data_(other.ptr_, other.ptr_ + other.size_),
        ptr_(data_.data()) {}
  Vector(Vector&& other) noexcept { move_from(other); }
  Vector& operator=(const Vector& other) {
    if (this != &other) {
      Vector copy(other);
      move_from(copy);
    }
    return *this;
  }
  Vector& operator=(Vector&& other) noexcept {
    if (this != &other) move_from(other);
    return *this;
  }
  ~Vector() = default;

  Index size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool is_scratch() const { return scratch_; }

  double& operator[](Index i) {
    SENKF_ASSERT(i < size_);
    return ptr_[i];
  }
  double operator[](Index i) const {
    SENKF_ASSERT(i < size_);
    return ptr_[i];
  }

  double* data() { return ptr_; }
  const double* data() const { return ptr_; }

  std::span<double> span() { return {ptr_, size_}; }
  std::span<const double> span() const { return {ptr_, size_}; }

  double* begin() { return ptr_; }
  double* end() { return ptr_ + size_; }
  const double* begin() const { return ptr_; }
  const double* end() const { return ptr_ + size_; }

  void resize(Index size, double fill = 0.0) {
    SENKF_REQUIRE(!scratch_, "Vector::resize: scratch vectors are fixed-size");
    data_.resize(size, fill);
    size_ = size;
    ptr_ = data_.data();
  }

  /// Element-wise equality over the logical values (ownership-agnostic).
  friend bool operator==(const Vector& a, const Vector& b) {
    if (a.size_ != b.size_) return false;
    for (Index i = 0; i < a.size_; ++i) {
      if (a.ptr_[i] != b.ptr_[i]) return false;
    }
    return true;
  }

 private:
  void move_from(Vector& other) noexcept {
    size_ = other.size_;
    scratch_ = other.scratch_;
    if (other.scratch_) {
      data_.clear();
      ptr_ = other.ptr_;
    } else {
      data_ = std::move(other.data_);
      ptr_ = data_.data();
    }
    other.size_ = 0;
    other.scratch_ = false;
    other.data_.clear();
    other.ptr_ = other.data_.data();
  }

  Index size_ = 0;
  std::vector<double> data_;
  double* ptr_ = nullptr;
  bool scratch_ = false;
};

/// Dense row-major matrix of doubles with a padded leading dimension.
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols, double fill = 0.0);

  /// Constructs from nested initializer lists (rows of equal width).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// A matrix with stride() == cols() — no padding.  For consumers that
  /// require the tightly-packed layout (wire formats, layout-sensitive
  /// tests).  Kernels handle such operands with scalar remainder loops,
  /// so results are identical, just slightly slower.
  static Matrix compact(Index rows, Index cols, double fill = 0.0);

  static Matrix identity(Index n);

  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& diag);

  /// The leading dimension a default (padded) allocation of `cols`
  /// columns gets — what scratch callers must size their storage with to
  /// reproduce the owning layout bit-for-bit.
  static Index padded_stride(Index cols);

  /// Non-owning matrix over caller storage of rows × stride doubles
  /// (stride ≥ cols; use padded_stride(cols) to match the default
  /// layout).  The storage must stay alive for the matrix's lifetime and
  /// arrive zero-filled when pad columns exist (the pad-zero invariant
  /// is the caller's to establish; every linalg routine then keeps it).
  static Matrix scratch(std::span<double> storage, Index rows, Index cols,
                        Index stride);

  Matrix(const Matrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        stride_(other.stride_),
        data_(other.ptr_, other.ptr_ + other.rows_ * other.stride_),
        ptr_(data_.data()) {}
  Matrix(Matrix&& other) noexcept { move_from(other); }
  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      Matrix copy(other);
      move_from(copy);
    }
    return *this;
  }
  Matrix& operator=(Matrix&& other) noexcept {
    if (this != &other) move_from(other);
    return *this;
  }
  ~Matrix() = default;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  /// Leading dimension: distance in doubles between row starts.
  Index stride() const { return stride_; }
  bool is_compact() const { return stride_ == cols_; }
  bool is_scratch() const { return scratch_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool square() const { return rows_ == cols_; }

  double& operator()(Index i, Index j) {
    SENKF_ASSERT(i < rows_ && j < cols_);
    return ptr_[i * stride_ + j];
  }
  double operator()(Index i, Index j) const {
    SENKF_ASSERT(i < rows_ && j < cols_);
    return ptr_[i * stride_ + j];
  }

  double* data() { return ptr_; }
  const double* data() const { return ptr_; }

  /// Contiguous view of the logical entries of row i (excludes the pad).
  std::span<double> row(Index i) {
    SENKF_ASSERT(i < rows_);
    return {ptr_ + i * stride_, cols_};
  }
  std::span<const double> row(Index i) const {
    SENKF_ASSERT(i < rows_);
    return {ptr_ + i * stride_, cols_};
  }

  /// Copy of column j (columns are strided in row-major storage).
  Vector column(Index j) const;

  /// Overwrites column j from a vector of length rows().
  void set_column(Index j, const Vector& values);

  /// Overwrites this matrix's values from `src` (shapes must match; the
  /// strides need not).  When they do match, the pad is copied too —
  /// both pads are zero by the invariant, so this reproduces the
  /// whole-buffer copy an owning `Matrix b = a;` performs.
  void assign_values(const Matrix& src);

  /// Element-wise equality over the logical rows() x cols() region; the
  /// operands' strides need not match (a padded and a compact matrix
  /// holding the same values compare equal).
  friend bool operator==(const Matrix& a, const Matrix& b) {
    if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
    for (Index i = 0; i < a.rows_; ++i) {
      for (Index j = 0; j < a.cols_; ++j) {
        if (a(i, j) != b(i, j)) return false;
      }
    }
    return true;
  }

 private:
  Matrix(Index rows, Index cols, Index stride, double fill);

  void move_from(Matrix& other) noexcept {
    rows_ = other.rows_;
    cols_ = other.cols_;
    stride_ = other.stride_;
    scratch_ = other.scratch_;
    if (other.scratch_) {
      data_.clear();
      ptr_ = other.ptr_;
    } else {
      data_ = std::move(other.data_);
      ptr_ = data_.data();
    }
    other.rows_ = other.cols_ = other.stride_ = 0;
    other.scratch_ = false;
    other.data_.clear();
    other.ptr_ = other.data_.data();
  }

  Index rows_ = 0;
  Index cols_ = 0;
  Index stride_ = 0;
  std::vector<double> data_;
  double* ptr_ = nullptr;
  bool scratch_ = false;
};

}  // namespace senkf::linalg
