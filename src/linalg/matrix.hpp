// Dense row-major matrix and vector types.
//
// The EnKF kernels only need a compact dense-linear-algebra core: this
// header provides value-semantic `Matrix` / `Vector` with bounds-checked
// element access in debug builds, plus cheap structural queries.  All
// numerical routines live in ops.hpp / cholesky.hpp / solve.hpp so the
// data type stays small.
//
// Layout: rows are contiguous, but the leading dimension (`stride()`)
// may exceed `cols()` — by default allocation rounds it up to the active
// kernel table's vector width so the SIMD kernels can use full-width
// loads and stores on every row.  The pad entries (columns cols()..
// stride()) are zero at construction and every routine in linalg keeps
// them zero (the "pad-zero invariant" — see kernels/simdvec.hpp), which
// is what lets kernels read them safely: pad lanes only ever contribute
// 0·x terms.  Code that needs the historical tightly-packed layout
// (wire-format staging, external libraries) builds with
// `Matrix::compact(...)`, which sets stride() == cols().
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace senkf::linalg {

using Index = std::size_t;

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  explicit Vector(Index size, double fill = 0.0) : data_(size, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}

  Index size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](Index i) {
    SENKF_ASSERT(i < data_.size());
    return data_[i];
  }
  double operator[](Index i) const {
    SENKF_ASSERT(i < data_.size());
    return data_[i];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<double> span() { return {data_.data(), data_.size()}; }
  std::span<const double> span() const { return {data_.data(), data_.size()}; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void resize(Index size, double fill = 0.0) { data_.resize(size, fill); }

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<double> data_;
};

/// Dense row-major matrix of doubles with a padded leading dimension.
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols, double fill = 0.0);

  /// Constructs from nested initializer lists (rows of equal width).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// A matrix with stride() == cols() — no padding.  For consumers that
  /// require the tightly-packed layout (wire formats, layout-sensitive
  /// tests).  Kernels handle such operands with scalar remainder loops,
  /// so results are identical, just slightly slower.
  static Matrix compact(Index rows, Index cols, double fill = 0.0);

  static Matrix identity(Index n);

  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& diag);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  /// Leading dimension: distance in doubles between row starts.
  Index stride() const { return stride_; }
  bool is_compact() const { return stride_ == cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool square() const { return rows_ == cols_; }

  double& operator()(Index i, Index j) {
    SENKF_ASSERT(i < rows_ && j < cols_);
    return data_[i * stride_ + j];
  }
  double operator()(Index i, Index j) const {
    SENKF_ASSERT(i < rows_ && j < cols_);
    return data_[i * stride_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Contiguous view of the logical entries of row i (excludes the pad).
  std::span<double> row(Index i) {
    SENKF_ASSERT(i < rows_);
    return {data_.data() + i * stride_, cols_};
  }
  std::span<const double> row(Index i) const {
    SENKF_ASSERT(i < rows_);
    return {data_.data() + i * stride_, cols_};
  }

  /// Copy of column j (columns are strided in row-major storage).
  Vector column(Index j) const;

  /// Overwrites column j from a vector of length rows().
  void set_column(Index j, const Vector& values);

  /// Element-wise equality over the logical rows() x cols() region; the
  /// operands' strides need not match (a padded and a compact matrix
  /// holding the same values compare equal).
  friend bool operator==(const Matrix& a, const Matrix& b) {
    if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
    for (Index i = 0; i < a.rows_; ++i) {
      for (Index j = 0; j < a.cols_; ++j) {
        if (a(i, j) != b(i, j)) return false;
      }
    }
    return true;
  }

 private:
  Matrix(Index rows, Index cols, Index stride, double fill);

  Index rows_ = 0;
  Index cols_ = 0;
  Index stride_ = 0;
  std::vector<double> data_;
};

}  // namespace senkf::linalg
