// Dense row-major matrix and vector types.
//
// The EnKF kernels only need a compact dense-linear-algebra core: this
// header provides value-semantic `Matrix` / `Vector` with bounds-checked
// element access in debug builds, plus cheap structural queries.  All
// numerical routines live in ops.hpp / cholesky.hpp / solve.hpp so the
// data type stays small.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace senkf::linalg {

using Index = std::size_t;

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  explicit Vector(Index size, double fill = 0.0) : data_(size, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}

  Index size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](Index i) {
    SENKF_ASSERT(i < data_.size());
    return data_[i];
  }
  double operator[](Index i) const {
    SENKF_ASSERT(i < data_.size());
    return data_[i];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<double> span() { return {data_.data(), data_.size()}; }
  std::span<const double> span() const { return {data_.data(), data_.size()}; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void resize(Index size, double fill = 0.0) { data_.resize(size, fill); }

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<double> data_;
};

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(Index rows, Index cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Constructs from nested initializer lists (rows of equal width).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(Index n);

  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& diag);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool square() const { return rows_ == cols_; }

  double& operator()(Index i, Index j) {
    SENKF_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(Index i, Index j) const {
    SENKF_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Contiguous view of row i.
  std::span<double> row(Index i) {
    SENKF_ASSERT(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> row(Index i) const {
    SENKF_ASSERT(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  /// Copy of column j (columns are strided in row-major storage).
  Vector column(Index j) const;

  /// Overwrites column j from a vector of length rows().
  void set_column(Index j, const Vector& values);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

}  // namespace senkf::linalg
