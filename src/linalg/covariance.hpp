// Ensemble-covariance utilities (paper eq. (4)).
//
//   x̄ᵇ  = ensemble mean,
//   U   = Xᵇ − x̄ᵇ ⊗ 1ᵀ   (anomalies),
//   B   = U Uᵀ / (N − 1)  (sample background-error covariance).
//
// Also provides the Gaspari–Cohn compactly-supported correlation function
// used to build synthetic-truth covariances and to taper spurious
// long-range correlations in tests.
#pragma once

#include <functional>

#include "linalg/matrix.hpp"

namespace senkf::linalg {

/// Row-wise mean of the ensemble matrix (n×N → length-n vector).
Vector ensemble_mean(const Matrix& ensemble);

/// U = ensemble − mean ⊗ 1ᵀ.
Matrix ensemble_anomalies(const Matrix& ensemble);

/// B = U Uᵀ / (N − 1); forms the dense n×n matrix — test/small use only.
Matrix sample_covariance(const Matrix& ensemble);

/// Gaspari–Cohn 5th-order piecewise-rational correlation.  `distance` and
/// `support_radius` share units; the function is exactly 0 beyond
/// 2·support_radius and 1 at distance 0.
double gaspari_cohn(double distance, double support_radius);

/// Element-wise (Schur) product taper of a covariance with Gaspari–Cohn
/// weights given a distance oracle d(i,j).
Matrix taper_covariance(const Matrix& covariance,
                        const std::function<double(Index, Index)>& distance,
                        double support_radius);

}  // namespace senkf::linalg
