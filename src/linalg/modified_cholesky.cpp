#include "linalg/modified_cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/kernels/dispatch.hpp"
#include "linalg/ops.hpp"

namespace senkf::linalg {

Matrix ModifiedCholesky::inverse_covariance() const {
  const Index n = dim();
  // B̂⁻¹ = Lᵀ D⁻¹ L.  Form D⁻¹L once, then multiply by Lᵀ.
  Matrix dinv_l = l;
  for (Index i = 0; i < n; ++i) {
    const double inv = 1.0 / d[i];
    for (Index j = 0; j <= i; ++j) dinv_l(i, j) *= inv;
  }
  return multiply_at_b(l, dinv_l);
}

Vector ModifiedCholesky::apply_inverse(const Vector& x) const {
  SENKF_REQUIRE(x.size() == dim(), "ModifiedCholesky: length mismatch");
  // y = Lᵀ D⁻¹ (L x)
  Vector t = multiply(l, x);
  for (Index i = 0; i < dim(); ++i) t[i] /= d[i];
  return multiply_at(l, t);
}

Matrix ModifiedCholesky::apply_inverse(const Matrix& x) const {
  SENKF_REQUIRE(x.rows() == dim(), "ModifiedCholesky: row mismatch");
  Matrix t = multiply(l, x);
  for (Index i = 0; i < dim(); ++i) {
    const double inv = 1.0 / d[i];
    for (Index j = 0; j < t.cols(); ++j) t(i, j) *= inv;
  }
  return multiply_at_b(l, t);
}

ModifiedCholesky estimate_inverse_covariance(const Matrix& anomalies,
                                             const PredecessorFn& predecessors,
                                             double ridge) {
  SENKF_REQUIRE(anomalies.cols() >= 2,
                "modified Cholesky: need at least 2 ensemble members");
  SENKF_REQUIRE(ridge >= 0.0, "modified Cholesky: ridge must be >= 0");
  const Index n = anomalies.rows();
  const Index ens = anomalies.cols();
  const double denom = static_cast<double>(ens - 1);

  ModifiedCholesky result;
  result.l = Matrix::identity(n);
  result.d = Vector(n, 0.0);

  // The column sweeps are dots and axpys over ensemble-sized rows, so
  // they ride the dispatched SIMD kernels.
  const auto& table = kernels::active_kernels();
  Vector fitted(ens);

  for (Index i = 0; i < n; ++i) {
    const std::vector<Index> pred = predecessors(i);
    for (const Index j : pred) {
      SENKF_REQUIRE(j < i, "modified Cholesky: predecessor must precede i");
    }
    const auto xi = anomalies.row(i);

    if (pred.empty()) {
      const double var = table.dot(ens, xi.data(), xi.data());
      result.d[i] = std::max(var / denom, ridge + 1e-12);
      continue;
    }

    // Normal equations of the regression x_i ~ x_pred:
    //   (Z Zᵀ + ridge I) beta = Z x_iᵀ, with Z the |pred|×N predecessor rows.
    const Index p = pred.size();
    Matrix gram(p, p);
    Vector rhs(p);
    for (Index a = 0; a < p; ++a) {
      const auto za = anomalies.row(pred[a]);
      for (Index b = a; b < p; ++b) {
        const auto zb = anomalies.row(pred[b]);
        const double sum = table.dot(ens, za.data(), zb.data());
        gram(a, b) = sum;
        gram(b, a) = sum;
      }
      gram(a, a) += ridge * denom;
      rhs[a] = table.dot(ens, za.data(), xi.data());
    }
    const Vector beta = CholeskyFactor(gram).solve(rhs);

    // Residual variance and the negated coefficients into row i of L:
    // fitted = Σ_a beta_a · z_a accumulated by axpy, rss = ‖x_i − fitted‖².
    std::fill(fitted.begin(), fitted.end(), 0.0);
    for (Index a = 0; a < p; ++a) {
      table.axpy(ens, beta[a], anomalies.row(pred[a]).data(), fitted.data());
    }
    table.axpy(ens, -1.0, xi.data(), fitted.data());
    const double rss = table.dot(ens, fitted.data(), fitted.data());
    result.d[i] = std::max(rss / denom, ridge + 1e-12);
    for (Index a = 0; a < p; ++a) result.l(i, pred[a]) = -beta[a];
  }
  return result;
}

PredecessorFn banded_predecessors(Index bandwidth) {
  return [bandwidth](Index i) {
    std::vector<Index> pred;
    const Index first = i > bandwidth ? i - bandwidth : 0;
    pred.reserve(i - first);
    for (Index j = first; j < i; ++j) pred.push_back(j);
    return pred;
  };
}

}  // namespace senkf::linalg
