#include "linalg/modified_cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/kernels/dispatch.hpp"
#include "linalg/ops.hpp"

namespace senkf::linalg {

Matrix ModifiedCholesky::inverse_covariance() const {
  const Index n = dim();
  Matrix dinv_l(n, n);
  Matrix out(n, n);
  inverse_covariance_into(dinv_l, out);
  return out;
}

void ModifiedCholesky::inverse_covariance_into(Matrix& dinv_l,
                                               Matrix& out) const {
  const Index n = dim();
  SENKF_REQUIRE(dinv_l.rows() == n && dinv_l.cols() == n && out.rows() == n &&
                    out.cols() == n,
                "ModifiedCholesky::inverse_covariance_into: shape mismatch");
  // B̂⁻¹ = Lᵀ D⁻¹ L.  Form D⁻¹L once, then multiply by Lᵀ.
  dinv_l.assign_values(l);
  for (Index i = 0; i < n; ++i) {
    const double inv = 1.0 / d[i];
    for (Index j = 0; j <= i; ++j) dinv_l(i, j) *= inv;
  }
  multiply_at_b_into(l, dinv_l, out);
}

Vector ModifiedCholesky::apply_inverse(const Vector& x) const {
  SENKF_REQUIRE(x.size() == dim(), "ModifiedCholesky: length mismatch");
  // y = Lᵀ D⁻¹ (L x)
  Vector t = multiply(l, x);
  for (Index i = 0; i < dim(); ++i) t[i] /= d[i];
  return multiply_at(l, t);
}

Matrix ModifiedCholesky::apply_inverse(const Matrix& x) const {
  SENKF_REQUIRE(x.rows() == dim(), "ModifiedCholesky: row mismatch");
  Matrix t = multiply(l, x);
  for (Index i = 0; i < dim(); ++i) {
    const double inv = 1.0 / d[i];
    for (Index j = 0; j < t.cols(); ++j) t(i, j) *= inv;
  }
  return multiply_at_b(l, t);
}

namespace {

// Adapts the std::function oracle to the allocation-free interface so the
// legacy entry point shares the _into implementation (no numeric drift
// between the two).
class FnOracle final : public PredecessorOracle {
 public:
  explicit FnOracle(const PredecessorFn& fn) : fn_(fn) {}
  std::span<const Index> predecessors(Index i, support::Arena&) override {
    current_ = fn_(i);
    return current_;
  }

 private:
  const PredecessorFn& fn_;
  std::vector<Index> current_;
};

}  // namespace

ModifiedCholesky estimate_inverse_covariance(const Matrix& anomalies,
                                             const PredecessorFn& predecessors,
                                             double ridge) {
  const Index n = anomalies.rows();
  ModifiedCholesky result;
  result.l = Matrix(n, n);
  result.d = Vector(n, 0.0);
  FnOracle oracle(predecessors);
  support::Arena arena;
  estimate_inverse_covariance_into(anomalies, oracle, ridge, arena, result);
  return result;
}

void estimate_inverse_covariance_into(const Matrix& anomalies,
                                      PredecessorOracle& predecessors,
                                      double ridge, support::Arena& arena,
                                      ModifiedCholesky& out) {
  SENKF_REQUIRE(anomalies.cols() >= 2,
                "modified Cholesky: need at least 2 ensemble members");
  SENKF_REQUIRE(ridge >= 0.0, "modified Cholesky: ridge must be >= 0");
  const Index n = anomalies.rows();
  const Index ens = anomalies.cols();
  const double denom = static_cast<double>(ens - 1);
  SENKF_REQUIRE(out.l.rows() == n && out.l.cols() == n && out.d.size() == n,
                "estimate_inverse_covariance_into: output shape mismatch");

  // The column sweeps are dots and axpys over ensemble-sized rows, so
  // they ride the dispatched SIMD kernels.
  const auto& table = kernels::active_kernels();
  const support::Arena::Marker outer = arena.mark();
  Vector fitted = Vector::scratch(arena.allocate_span<double>(ens));

  for (Index i = 0; i < n; ++i) {
    // Row i of L is rebuilt from zero (out may be a reused scratch):
    // unit diagonal, negated regression coefficients at the predecessors.
    auto lrow = out.l.row(i);
    std::fill(lrow.begin(), lrow.end(), 0.0);
    out.l(i, i) = 1.0;

    const support::Arena::Marker row_marker = arena.mark();
    const std::span<const Index> pred = predecessors.predecessors(i, arena);
    for (const Index j : pred) {
      SENKF_REQUIRE(j < i, "modified Cholesky: predecessor must precede i");
    }
    const auto xi = anomalies.row(i);

    if (pred.empty()) {
      const double var = table.dot(ens, xi.data(), xi.data());
      out.d[i] = std::max(var / denom, ridge + 1e-12);
      arena.rewind(row_marker);
      continue;
    }

    // Normal equations of the regression x_i ~ x_pred:
    //   (Z Zᵀ + ridge I) beta = Z x_iᵀ, with Z the |pred|×N predecessor rows.
    const Index p = pred.size();
    const Index pstride = Matrix::padded_stride(p);
    auto gram_storage = arena.allocate_span<double>(p * pstride);
    std::fill(gram_storage.begin(), gram_storage.end(), 0.0);
    Matrix gram = Matrix::scratch(gram_storage, p, p, pstride);
    auto lfac_storage = arena.allocate_span<double>(p * pstride);
    std::fill(lfac_storage.begin(), lfac_storage.end(), 0.0);
    Matrix lfac = Matrix::scratch(lfac_storage, p, p, pstride);
    Vector beta = Vector::scratch(arena.allocate_span<double>(p));
    for (Index a = 0; a < p; ++a) {
      const auto za = anomalies.row(pred[a]);
      for (Index b = a; b < p; ++b) {
        const auto zb = anomalies.row(pred[b]);
        const double sum = table.dot(ens, za.data(), zb.data());
        gram(a, b) = sum;
        gram(b, a) = sum;
      }
      gram(a, a) += ridge * denom;
      beta[a] = table.dot(ens, za.data(), xi.data());
    }
    // Factor + in-place solve: the same kernel sequence CholeskyFactor /
    // its solve() run, minus their allocations.
    cholesky_factor_into(gram, lfac);
    cholesky_solve_in_place(lfac, beta);

    // Residual variance and the negated coefficients into row i of L:
    // fitted = Σ_a beta_a · z_a accumulated by axpy, rss = ‖x_i − fitted‖².
    std::fill(fitted.begin(), fitted.end(), 0.0);
    for (Index a = 0; a < p; ++a) {
      table.axpy(ens, beta[a], anomalies.row(pred[a]).data(), fitted.data());
    }
    table.axpy(ens, -1.0, xi.data(), fitted.data());
    const double rss = table.dot(ens, fitted.data(), fitted.data());
    out.d[i] = std::max(rss / denom, ridge + 1e-12);
    for (Index a = 0; a < p; ++a) out.l(i, pred[a]) = -beta[a];
    arena.rewind(row_marker);
  }
  arena.rewind(outer);
}

PredecessorFn banded_predecessors(Index bandwidth) {
  return [bandwidth](Index i) {
    std::vector<Index> pred;
    const Index first = i > bandwidth ? i - bandwidth : 0;
    pred.reserve(i - first);
    for (Index j = first; j < i; ++j) pred.push_back(j);
    return pred;
  };
}

}  // namespace senkf::linalg
