#include "linalg/solve.hpp"

#include <cmath>
#include <numeric>

namespace senkf::linalg {

LuFactor::LuFactor(const Matrix& a) : lu_(a) {
  SENKF_REQUIRE(a.square(), "LU: matrix must be square");
  const Index n = lu_.rows();
  pivot_.resize(n);
  std::iota(pivot_.begin(), pivot_.end(), Index{0});

  for (Index k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest |entry| of column k to the top.
    Index best = k;
    double best_abs = std::abs(lu_(k, k));
    for (Index i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best_abs) {
        best_abs = v;
        best = i;
      }
    }
    if (best_abs < 1e-300) throw NumericError("LU: matrix is singular");
    if (best != k) {
      for (Index j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(best, j));
      std::swap(pivot_[k], pivot_[best]);
      pivot_sign_ = -pivot_sign_;
    }
    const double pivot = lu_(k, k);
    for (Index i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) / pivot;
      lu_(i, k) = factor;
      for (Index j = k + 1; j < n; ++j) lu_(i, j) -= factor * lu_(k, j);
    }
  }
}

Vector LuFactor::solve(const Vector& b) const {
  SENKF_REQUIRE(b.size() == dim(), "LU::solve: length mismatch");
  const Index n = dim();
  Vector x(n);
  // Apply permutation, then forward substitution with unit-lower L.
  for (Index i = 0; i < n; ++i) {
    double sum = b[pivot_[i]];
    for (Index k = 0; k < i; ++k) sum -= lu_(i, k) * x[k];
    x[i] = sum;
  }
  // Backward substitution with U.
  for (Index ip = n; ip-- > 0;) {
    double sum = x[ip];
    for (Index k = ip + 1; k < n; ++k) sum -= lu_(ip, k) * x[k];
    x[ip] = sum / lu_(ip, ip);
  }
  return x;
}

Matrix LuFactor::solve(const Matrix& b) const {
  SENKF_REQUIRE(b.rows() == dim(), "LU::solve: row mismatch");
  Matrix x(b.rows(), b.cols());
  for (Index j = 0; j < b.cols(); ++j) x.set_column(j, solve(b.column(j)));
  return x;
}

double LuFactor::determinant() const {
  double det = pivot_sign_;
  for (Index i = 0; i < dim(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve_general(const Matrix& a, const Vector& b) {
  return LuFactor(a).solve(b);
}

Matrix inverse(const Matrix& a) {
  return LuFactor(a).solve(Matrix::identity(a.rows()));
}

}  // namespace senkf::linalg
