#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/ops.hpp"

namespace senkf::linalg {

SymmetricEigen symmetric_eigen(const Matrix& a, double symmetry_tol) {
  const Index n = a.rows();
  SymmetricEigen out{Vector(n), Matrix(n, n)};
  Matrix work_d(n, n);
  Matrix work_v(n, n);
  std::vector<Index> order(n);
  symmetric_eigen_into(a, out.values, out.vectors, work_d, work_v, order,
                       symmetry_tol);
  return out;
}

void symmetric_eigen_into(const Matrix& a, Vector& values, Matrix& vectors,
                          Matrix& work_d, Matrix& work_v,
                          std::span<Index> order, double symmetry_tol) {
  SENKF_REQUIRE(a.square(), "symmetric_eigen: matrix must be square");
  SENKF_REQUIRE(is_symmetric(a, symmetry_tol),
                "symmetric_eigen: matrix must be symmetric");
  const Index n = a.rows();
  SENKF_REQUIRE(values.size() == n && vectors.rows() == n &&
                    vectors.cols() == n && work_d.rows() == n &&
                    work_d.cols() == n && work_v.rows() == n &&
                    work_v.cols() == n && order.size() >= n,
                "symmetric_eigen_into: scratch shape mismatch");

  if (n == 0) return;
  if (n == 1) {
    values[0] = a(0, 0);
    vectors(0, 0) = 1.0;
    work_d(0, 0) = a(0, 0);
    work_v(0, 0) = 1.0;
    order[0] = 0;
    return;
  }

  // Householder tridiagonalization followed by implicit-shift QL (the
  // classic tred2/tql2 pair): O(n³) with a far smaller constant than
  // Jacobi sweeps at ensemble sizes.  `z` starts as a copy of A and
  // finishes with the eigenvectors in its columns; the tridiagonal
  // diagonal/subdiagonal live in two rows of the work matrix.
  Matrix& z = work_v;
  z.assign_values(a);
  double* const d = work_d.data();                    // diagonal
  double* const e = work_d.data() + work_d.stride();  // subdiagonal

  // --- tred2: reduce z to tridiagonal form, accumulating transforms ---
  for (Index i = n - 1; i >= 1; --i) {
    const Index l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (Index k = 0; k <= l; ++k) scale += std::abs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (Index k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (Index j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (Index k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (Index k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (Index j = 0; j <= l; ++j) {
          f = z(i, j);
          const double ej = e[j] - hh * f;
          e[j] = ej;
          for (Index k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + ej * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (Index i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (Index j = 0; j < i; ++j) {
        double g = 0.0;
        for (Index k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (Index k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (Index j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }

  // --- tql2: implicit-shift QL on the tridiagonal, rotating z along ---
  const auto pythag = [](double x, double y) {
    const double ax = std::abs(x);
    const double ay = std::abs(y);
    if (ax > ay) {
      const double r = ay / ax;
      return ax * std::sqrt(1.0 + r * r);
    }
    if (ay == 0.0) return 0.0;
    const double r = ax / ay;
    return ay * std::sqrt(1.0 + r * r);
  };

  for (Index i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (Index l = 0; l < n; ++l) {
    int iter = 0;
    Index m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) + dd == dd) break;
      }
      if (m != l) {
        if (iter++ == 50) {
          throw NumericError("symmetric_eigen: QL iterations did not converge");
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (Index i = m; i-- > l;) {
          const double f = s * e[i];
          const double b = c * e[i];
          r = pythag(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (Index k = 0; k < n; ++k) {
            const double zf = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * zf;
            z(k, i) = c * z(k, i) - s * zf;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  // Sort ascending by eigenvalue.
  std::iota(order.begin(), order.begin() + n, Index{0});
  std::sort(order.begin(), order.begin() + n,
            [&](Index x, Index y) { return d[x] < d[y]; });

  for (Index j = 0; j < n; ++j) {
    values[j] = d[order[j]];
    for (Index i = 0; i < n; ++i) vectors(i, j) = z(i, order[j]);
  }
}

namespace {
Matrix apply_spectral(const Matrix& a, double (*f)(double), double floor,
                      const char* who) {
  const SymmetricEigen eig = symmetric_eigen(a);
  const Index n = a.rows();
  Matrix scaled = eig.vectors;  // V · f(Λ)
  for (Index j = 0; j < n; ++j) {
    double lambda = eig.values[j];
    if (lambda < floor) {
      throw NumericError(std::string(who) +
                         ": matrix is not positive (semi-)definite");
    }
    const double fj = f(std::max(lambda, 0.0));
    for (Index i = 0; i < n; ++i) scaled(i, j) *= fj;
  }
  return multiply_a_bt(scaled, eig.vectors);
}
}  // namespace

Matrix spd_sqrt(const Matrix& a) {
  return apply_spectral(
      a, +[](double x) { return std::sqrt(x); }, -1e-10, "spd_sqrt");
}

Matrix spd_inverse_sqrt(const Matrix& a) {
  return apply_spectral(
      a, +[](double x) { return 1.0 / std::sqrt(x); }, 1e-14,
      "spd_inverse_sqrt");
}

}  // namespace senkf::linalg
