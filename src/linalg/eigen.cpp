#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/ops.hpp"

namespace senkf::linalg {

SymmetricEigen symmetric_eigen(const Matrix& a, double symmetry_tol) {
  SENKF_REQUIRE(a.square(), "symmetric_eigen: matrix must be square");
  SENKF_REQUIRE(is_symmetric(a, symmetry_tol),
                "symmetric_eigen: matrix must be symmetric");
  const Index n = a.rows();

  Matrix d = a;                      // driven to diagonal
  Matrix v = Matrix::identity(n);    // accumulated rotations

  const auto off_diagonal_norm = [&] {
    double sum = 0.0;
    for (Index i = 0; i < n; ++i) {
      for (Index j = i + 1; j < n; ++j) sum += d(i, j) * d(i, j);
    }
    return std::sqrt(2.0 * sum);
  };

  constexpr int kMaxSweeps = 100;
  const double tol = 1e-13 * std::max(1.0, norm_frobenius(a));
  int sweep = 0;
  while (off_diagonal_norm() > tol) {
    if (++sweep > kMaxSweeps) {
      throw NumericError("symmetric_eigen: Jacobi sweeps did not converge");
    }
    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= tol / static_cast<double>(n * n)) continue;
        // Rotation angle annihilating d(p, q).
        const double theta = (d(q, q) - d(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/columns p and q of D and to V.
        for (Index k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (Index k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (Index k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue.
  std::vector<Index> order(n);
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(),
            [&](Index x, Index y) { return d(x, x) < d(y, y); });

  SymmetricEigen out{Vector(n), Matrix(n, n)};
  for (Index j = 0; j < n; ++j) {
    out.values[j] = d(order[j], order[j]);
    for (Index i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

namespace {
Matrix apply_spectral(const Matrix& a, double (*f)(double), double floor,
                      const char* who) {
  const SymmetricEigen eig = symmetric_eigen(a);
  const Index n = a.rows();
  Matrix scaled = eig.vectors;  // V · f(Λ)
  for (Index j = 0; j < n; ++j) {
    double lambda = eig.values[j];
    if (lambda < floor) {
      throw NumericError(std::string(who) +
                         ": matrix is not positive (semi-)definite");
    }
    const double fj = f(std::max(lambda, 0.0));
    for (Index i = 0; i < n; ++i) scaled(i, j) *= fj;
  }
  return multiply_a_bt(scaled, eig.vectors);
}
}  // namespace

Matrix spd_sqrt(const Matrix& a) {
  return apply_spectral(
      a, +[](double x) { return std::sqrt(x); }, -1e-10, "spd_sqrt");
}

Matrix spd_inverse_sqrt(const Matrix& a) {
  return apply_spectral(
      a, +[](double x) { return 1.0 / std::sqrt(x); }, 1e-14,
      "spd_inverse_sqrt");
}

}  // namespace senkf::linalg
