// Symmetric eigendecomposition (cyclic Jacobi) and SPD matrix functions.
//
// Needed by the deterministic ensemble-transform analysis, whose ensemble
// weight matrix is the symmetric square root of an N×N SPD matrix.  The
// ensembles are small (N ≲ a few hundred), where Jacobi's O(n³) per sweep
// with unconditional stability is the right tool.
#pragma once

#include "linalg/matrix.hpp"

namespace senkf::linalg {

struct SymmetricEigen {
  Vector values;   ///< eigenvalues, ascending
  Matrix vectors;  ///< orthonormal eigenvectors, one per column
};

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
/// Throws InvalidArgument if `a` is not symmetric to within `symmetry_tol`,
/// NumericError if the sweep limit is exhausted before convergence.
SymmetricEigen symmetric_eigen(const Matrix& a, double symmetry_tol = 1e-10);

/// f(A) = V f(Λ) Vᵀ for SPD A.
/// Symmetric square root; requires all eigenvalues ≥ −tol (clamped to 0).
Matrix spd_sqrt(const Matrix& a);

/// Symmetric inverse square root; requires strictly positive eigenvalues.
Matrix spd_inverse_sqrt(const Matrix& a);

}  // namespace senkf::linalg
