// Symmetric eigendecomposition and SPD matrix functions.
//
// Needed by the deterministic ensemble-transform analysis, whose ensemble
// weight matrix is the symmetric square root of an N×N SPD matrix.  The
// ensembles are small (N ≲ a few hundred); Householder tridiagonalization
// followed by implicit-shift QL (the classic tred2/tql2 pair) is several
// times faster than Jacobi sweeps at these sizes while keeping the same
// unconditional stability for symmetric input.
#pragma once

#include "linalg/matrix.hpp"

namespace senkf::linalg {

struct SymmetricEigen {
  Vector values;   ///< eigenvalues, ascending
  Matrix vectors;  ///< orthonormal eigenvectors, one per column
};

/// Eigendecomposition of a symmetric matrix (tridiagonalize + QL).
/// Throws InvalidArgument if `a` is not symmetric to within `symmetry_tol`,
/// NumericError if the iteration limit is exhausted before convergence.
SymmetricEigen symmetric_eigen(const Matrix& a, double symmetry_tol = 1e-10);

/// Allocation-free eigendecomposition into caller-provided storage (all
/// n-sized for n×n `a`): `values`/`vectors` receive the result, `work_d`
/// and `work_v` are n×n work matrices and `order` an n-length sort
/// scratch.  Every slot is fully overwritten; results are bit-identical
/// to symmetric_eigen.
void symmetric_eigen_into(const Matrix& a, Vector& values, Matrix& vectors,
                          Matrix& work_d, Matrix& work_v,
                          std::span<Index> order,
                          double symmetry_tol = 1e-10);

/// f(A) = V f(Λ) Vᵀ for SPD A.
/// Symmetric square root; requires all eigenvalues ≥ −tol (clamped to 0).
Matrix spd_sqrt(const Matrix& a);

/// Symmetric inverse square root; requires strictly positive eigenvalues.
Matrix spd_inverse_sqrt(const Matrix& a);

}  // namespace senkf::linalg
