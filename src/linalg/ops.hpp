// Basic dense BLAS-like operations on Matrix / Vector.
//
// These are the only kernels the EnKF local analysis needs: GEMM variants,
// matrix-vector products, AXPY-style updates, diagonal row scalings,
// transposes and norms.  The hot paths dispatch to cache-blocked
// micro-kernels with a runtime-selected ISA (linalg/kernels/): once the
// pipeline hides I/O and communication behind the local analysis, these
// FLOPs bound the end-to-end time, so they run as fast as the host allows
// (AVX-512 / AVX2+FMA / NEON when available, portable scalar otherwise;
// override with SENKF_KERNEL).
#pragma once

#include "linalg/matrix.hpp"

namespace senkf::linalg {

/// C = A * B.
Matrix multiply(const Matrix& a, const Matrix& b);

/// C = Aᵀ * B without forming Aᵀ.
Matrix multiply_at_b(const Matrix& a, const Matrix& b);

/// C = A * Bᵀ without forming Bᵀ.
Matrix multiply_a_bt(const Matrix& a, const Matrix& b);

/// y = A * x.
Vector multiply(const Matrix& a, const Vector& x);

/// y = Aᵀ * x without forming Aᵀ.
Vector multiply_at(const Matrix& a, const Vector& x);

/// Allocation-free variants writing into a caller-provided (typically
/// arena-scratch) output of the exact result shape.  The kernels
/// overwrite every logical output entry, so given a pad-zero output
/// buffer (what Matrix::scratch requires anyway) the results are
/// bit-identical to the allocating forms above.  Outputs must not alias
/// the inputs.
void multiply_into(const Matrix& a, const Matrix& b, Matrix& c);
void multiply_at_b_into(const Matrix& a, const Matrix& b, Matrix& c);
void multiply_a_bt_into(const Matrix& a, const Matrix& b, Matrix& c);
void multiply_into(const Matrix& a, const Vector& x, Vector& y);
void multiply_at_into(const Matrix& a, const Vector& x, Vector& y);

/// Returns Aᵀ.
Matrix transpose(const Matrix& a);

/// a += alpha * b (element-wise, matching shapes).
void axpy(double alpha, const Matrix& b, Matrix& a);
void axpy(double alpha, const Vector& b, Vector& a);

/// a *= alpha.
void scale(Matrix& a, double alpha);
void scale(Vector& a, double alpha);

/// Diagonal left-scaling A ← D·A: row i of A is multiplied by d[i].
/// The EnKF analysis uses this for R⁻¹-weighting of observation-space
/// matrices (d holding the reciprocal observation variances).
void row_scale(const Vector& d, Matrix& a);

/// Fused innovation weighting: out(i,j) = (ys(i,j) − hx(i,j)) · rinv[i],
/// i.e. R⁻¹(Yˢ − H X̄ᵇ) in one pass instead of scale + axpy + row_scale.
Matrix weighted_residual(const Matrix& ys, const Matrix& hx,
                         const Vector& rinv);

/// Allocation-free weighted_residual (same contract as the *_into
/// products above).
void weighted_residual_into(const Matrix& ys, const Matrix& hx,
                            const Vector& rinv, Matrix& out);

/// Returns a - b.
Matrix subtract(const Matrix& a, const Matrix& b);
Vector subtract(const Vector& a, const Vector& b);

/// Returns a + b.
Matrix add(const Matrix& a, const Matrix& b);
Vector add(const Vector& a, const Vector& b);

/// Dot product.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& a);

/// Frobenius norm.
double norm_frobenius(const Matrix& a);

/// max |a_ij - b_ij| over matching shapes.
double max_abs_diff(const Matrix& a, const Matrix& b);
double max_abs_diff(const Vector& a, const Vector& b);

/// True if A is symmetric to within `tol`.
bool is_symmetric(const Matrix& a, double tol = 1e-12);

}  // namespace senkf::linalg
