// Compact storage for the modified-Cholesky factor.
//
// Localization makes L unit-lower-triangular with at most
// (2ξ+1)(2η+1)/2-ish non-zeros per row, so an n×n dense L wastes O(n²)
// memory — the paper notes that "compact representation of matrices can
// be used ... to exploit the structures of B̂⁻¹" (§2.3).  SparseUnitLower
// stores the strictly-lower non-zeros row-compressed (the unit diagonal
// is implicit) and applies L / Lᵀ / B̂⁻¹ = LᵀD⁻¹L without densifying.
#pragma once

#include "linalg/modified_cholesky.hpp"

namespace senkf::linalg {

class SparseUnitLower {
 public:
  /// Compresses a dense unit-lower-triangular matrix, dropping strictly-
  /// lower entries with |value| <= drop_tol.  The diagonal must be 1.
  static SparseUnitLower from_dense(const Matrix& l, double drop_tol = 0.0);

  Index dim() const { return row_start_.empty() ? 0 : row_start_.size() - 1; }

  /// Strictly-lower non-zeros stored.
  Index nonzeros() const { return values_.size(); }

  /// Heap bytes of the compressed representation.
  std::size_t memory_bytes() const;

  /// y = L x.
  Vector multiply(const Vector& x) const;

  /// y = Lᵀ x.
  Vector multiply_transpose(const Vector& x) const;

  /// Dense reconstruction (tests/diagnostics).
  Matrix to_dense() const;

 private:
  std::vector<Index> row_start_;  // size dim+1
  std::vector<Index> column_;
  std::vector<double> values_;
};

/// ModifiedCholesky with the factor stored compressed.
struct CompactModifiedCholesky {
  SparseUnitLower l;
  Vector d;

  /// Compresses an existing estimate.
  static CompactModifiedCholesky from(const ModifiedCholesky& factors,
                                      double drop_tol = 0.0);

  Index dim() const { return d.size(); }

  /// y = B̂⁻¹ x = Lᵀ D⁻¹ L x, entirely in compressed form.
  Vector apply_inverse(const Vector& x) const;

  std::size_t memory_bytes() const;
};

}  // namespace senkf::linalg
