#include "pfs/faults.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <sstream>
#include <thread>

namespace senkf::pfs {

namespace {

/// splitmix64 — the same stateless mixer the RNG layer builds on; fault
/// draws must not share a stream with anything (determinism under any
/// thread interleaving), so every decision hashes its own coordinates.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash word.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

[[noreturn]] void bad_spec(std::string_view entry, const std::string& why) {
  throw InvalidArgument("SENKF_FAULTS: bad entry '" + std::string(entry) +
                        "': " + why);
}

double parse_double(std::string_view entry, std::string_view text) {
  try {
    std::size_t used = 0;
    const std::string owned(text);
    const double value = std::stod(owned, &used);
    if (used != owned.size()) bad_spec(entry, "trailing characters");
    return value;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    bad_spec(entry, "expected a number");
  }
}

std::uint64_t parse_u64(std::string_view entry, std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    bad_spec(entry, "expected a non-negative integer");
  }
  return value;
}

/// Splits "a:b" (exactly one colon).
std::pair<std::string_view, std::string_view> split_pair(
    std::string_view entry, std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos || colon + 1 >= text.size() ||
      text.find(':', colon + 1) != std::string_view::npos) {
    bad_spec(entry, "expected INDEX:VALUE");
  }
  return {text.substr(0, colon), text.substr(colon + 1)};
}

}  // namespace

bool FaultPlan::enabled() const {
  return transient_p > 0.0 || !dead_members.empty() || !slow_osts.empty() ||
         latency_factor != 1.0 || !stragglers.empty();
}

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == entry.size()) {
      bad_spec(entry, "expected key=value");
    }
    const std::string_view key = entry.substr(0, eq);
    const std::string_view value = entry.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(entry, value);
    } else if (key == "transient") {
      plan.transient_p = parse_double(entry, value);
      if (plan.transient_p < 0.0 || plan.transient_p >= 1.0) {
        bad_spec(entry, "probability must be in [0, 1)");
      }
    } else if (key == "burst") {
      const std::uint64_t burst = parse_u64(entry, value);
      if (burst < 1 || burst > 1000) bad_spec(entry, "burst must be in [1, 1000]");
      plan.max_burst = static_cast<int>(burst);
    } else if (key == "dead") {
      plan.dead_members.push_back(parse_u64(entry, value));
    } else if (key == "slow_ost") {
      const auto [index, factor] = split_pair(entry, value);
      FaultPlan::SlowOst slow;
      slow.ost = static_cast<int>(parse_u64(entry, index));
      slow.factor = parse_double(entry, factor);
      if (slow.factor <= 1.0) bad_spec(entry, "factor must be > 1");
      plan.slow_osts.push_back(slow);
    } else if (key == "latency") {
      plan.latency_factor = parse_double(entry, value);
      if (plan.latency_factor < 1.0) bad_spec(entry, "factor must be >= 1");
    } else if (key == "straggler") {
      const auto [rank, delay] = split_pair(entry, value);
      FaultPlan::Straggler straggler;
      straggler.io_rank = static_cast<int>(parse_u64(entry, rank));
      straggler.delay_s = parse_double(entry, delay);
      if (straggler.delay_s <= 0.0) bad_spec(entry, "delay must be > 0");
      plan.stragglers.push_back(straggler);
    } else {
      bad_spec(entry, "unknown key '" + std::string(key) + "'");
    }
  }
  // Canonical order so to_spec round-trips regardless of input order.
  std::sort(plan.dead_members.begin(), plan.dead_members.end());
  plan.dead_members.erase(
      std::unique(plan.dead_members.begin(), plan.dead_members.end()),
      plan.dead_members.end());
  std::sort(plan.slow_osts.begin(), plan.slow_osts.end(),
            [](const auto& a, const auto& b) { return a.ost < b.ost; });
  std::sort(plan.stragglers.begin(), plan.stragglers.end(),
            [](const auto& a, const auto& b) { return a.io_rank < b.io_rank; });
  return plan;
}

std::string to_spec(const FaultPlan& plan) {
  std::ostringstream os;
  os << "seed=" << plan.seed;
  if (plan.transient_p > 0.0) os << ",transient=" << plan.transient_p;
  os << ",burst=" << plan.max_burst;
  for (const std::uint64_t member : plan.dead_members) {
    os << ",dead=" << member;
  }
  for (const auto& slow : plan.slow_osts) {
    os << ",slow_ost=" << slow.ost << ':' << slow.factor;
  }
  if (plan.latency_factor != 1.0) os << ",latency=" << plan.latency_factor;
  for (const auto& straggler : plan.stragglers) {
    os << ",straggler=" << straggler.io_rank << ':' << straggler.delay_s;
  }
  return os.str();
}

std::optional<FaultPlan> fault_plan_from_env() {
  const char* raw = std::getenv("SENKF_FAULTS");
  if (raw == nullptr) return std::nullopt;
  const std::string_view spec(raw);
  if (spec.empty() || spec == "off") return std::nullopt;
  return parse_fault_plan(spec);
}

std::chrono::nanoseconds backoff_delay(const RetryPolicy& policy,
                                       std::uint64_t salt, int attempt) {
  SENKF_REQUIRE(attempt >= 1, "backoff_delay: attempt starts at 1");
  SENKF_REQUIRE(policy.backoff_factor >= 1.0 && policy.jitter >= 0.0 &&
                    policy.jitter < 1.0,
                "backoff_delay: invalid policy");
  double delay = static_cast<double>(policy.base_delay.count());
  for (int i = 1; i < attempt; ++i) {
    delay *= policy.backoff_factor;
    if (delay >= static_cast<double>(policy.max_delay.count())) break;
  }
  delay = std::min(delay, static_cast<double>(policy.max_delay.count()));
  // Deterministic jitter in [1 − j, 1 + j): same (salt, attempt) → same
  // pause, so a retried schedule is exactly reproducible.
  const double u =
      unit(mix(salt ^ mix(static_cast<std::uint64_t>(attempt) ^
                          0x6a09e667f3bcc909ULL)));
  delay *= 1.0 + policy.jitter * (2.0 * u - 1.0);
  return std::chrono::nanoseconds(
      static_cast<std::chrono::nanoseconds::rep>(delay));
}

Sleeper real_sleeper() {
  return [](std::chrono::nanoseconds pause) {
    if (pause.count() > 0) std::this_thread::sleep_for(pause);
  };
}

std::uint64_t op_key(std::uint64_t a, std::uint64_t b) {
  return mix(a ^ mix(b ^ 0x2545f4914f6cdd1dULL));
}

FaultMetrics& FaultMetrics::get() {
  auto& registry = telemetry::Registry::global();
  static FaultMetrics metrics{
      registry.counter("pfs.fault.injected"),
      registry.counter("pfs.fault.transient"),
      registry.counter("pfs.fault.dead_reads"),
      registry.counter("pfs.fault.straggler_delay_ns"),
      registry.counter("pfs.fault.slowed_reads"),
  };
  return metrics;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  SENKF_REQUIRE(plan_.transient_p >= 0.0 && plan_.transient_p < 1.0,
                "FaultInjector: transient_p must be in [0, 1)");
  SENKF_REQUIRE(plan_.max_burst >= 1, "FaultInjector: max_burst must be >= 1");
  SENKF_REQUIRE(plan_.latency_factor >= 1.0,
                "FaultInjector: latency_factor must be >= 1");
}

bool FaultInjector::is_dead(std::uint64_t member) const {
  return std::binary_search(plan_.dead_members.begin(),
                            plan_.dead_members.end(), member);
}

int FaultInjector::transient_burst(std::uint64_t member,
                                   std::uint64_t key) const {
  if (plan_.transient_p <= 0.0) return 0;
  const std::uint64_t h = mix(plan_.seed ^ mix(member ^ mix(key)));
  if (unit(h) >= plan_.transient_p) return 0;
  // Faulty op: burst length 1 + geometric-ish tail from fresh hash bits,
  // hard-capped so a sane retry policy always outlasts it.
  int burst = 1;
  std::uint64_t draw = mix(h);
  while (burst < plan_.max_burst && unit(draw) < 0.5) {
    ++burst;
    draw = mix(draw);
  }
  return burst;
}

bool FaultInjector::next_read_fails(std::uint64_t member,
                                    std::uint64_t key) const {
  const int burst = transient_burst(member, key);
  if (burst == 0) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    int& used = consumed_[{member, key}];
    if (used >= burst) return false;
    ++used;
  }
  FaultMetrics& metrics = FaultMetrics::get();
  metrics.injected.add(1);
  metrics.transient.add(1);
  return true;
}

double FaultInjector::latency_factor(int ost) const {
  double factor = plan_.latency_factor;
  for (const auto& slow : plan_.slow_osts) {
    if (slow.ost == ost) factor *= slow.factor;
  }
  return factor;
}

std::chrono::nanoseconds FaultInjector::straggler_delay(int io_rank) const {
  for (const auto& straggler : plan_.stragglers) {
    if (straggler.io_rank == io_rank) {
      return std::chrono::nanoseconds(static_cast<std::int64_t>(
          straggler.delay_s * 1e9));
    }
  }
  return std::chrono::nanoseconds::zero();
}

}  // namespace senkf::pfs
