#include "pfs/pfs.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace senkf::pfs {

namespace {

// The DES plane runs on simulated time, so spans (wall-clock) would be
// meaningless here; the counters still tell a real story — how many
// requests, addressing operations and bytes a simulated workflow issued.
struct PfsMetrics {
  telemetry::Counter& reads;
  telemetry::Counter& segments;
  telemetry::Counter& bytes;
  static PfsMetrics& get() {
    auto& registry = telemetry::Registry::global();
    static PfsMetrics m{
        registry.counter("pfs.reads"),
        registry.counter("pfs.segments"),
        registry.counter("pfs.bytes"),
    };
    return m;
  }
};

}  // namespace

Ost::Ost(sim::Simulation& sim, const OstConfig& config)
    : sim_(sim), config_(config), streams_(sim, config.max_streams) {
  SENKF_REQUIRE(config.segment_overhead_s >= 0.0,
                "Ost: segment overhead must be >= 0");
  SENKF_REQUIRE(config.stream_bandwidth > 0.0,
                "Ost: stream bandwidth must be positive");
}

double Ost::service_time(std::uint64_t segments, double bytes) const {
  return static_cast<double>(segments) * config_.segment_overhead_s +
         bytes / config_.stream_bandwidth;
}

sim::Task Ost::read(std::uint64_t segments, double bytes) {
  SENKF_REQUIRE(segments > 0, "Ost::read: need at least one segment");
  SENKF_REQUIRE(bytes >= 0.0, "Ost::read: negative byte count");
  PfsMetrics& metrics = PfsMetrics::get();
  metrics.reads.add(1);
  metrics.segments.add(segments);
  metrics.bytes.add(static_cast<std::uint64_t>(bytes));
  co_await streams_.acquire();
  const double service = service_time(segments, bytes);
  co_await sim_.delay(service);
  busy_time_ += service;
  bytes_read_ += bytes;
  streams_.release();
}

Pfs::Pfs(sim::Simulation& sim, const PfsConfig& config)
    : sim_(sim), config_(config) {
  SENKF_REQUIRE(config.ost_count > 0, "Pfs: need at least one OST");
  SENKF_REQUIRE(config.stripe_count >= 1 &&
                    config.stripe_count <= config.ost_count,
                "Pfs: stripe_count must be in [1, ost_count]");
  if (config.faults.enabled()) {
    injector_ = std::make_unique<FaultInjector>(config.faults);
  }
  osts_.reserve(config.ost_count);
  for (int i = 0; i < config.ost_count; ++i) {
    // Latency inflation is a property of the disk, so it is baked into
    // the OST's service constants rather than patched per read.
    OstConfig ost_config = config.ost;
    if (injector_ != nullptr) {
      const double factor = injector_->latency_factor(i);
      ost_config.segment_overhead_s *= factor;
      ost_config.stream_bandwidth /= factor;
    }
    osts_.push_back(std::make_unique<Ost>(sim, ost_config));
  }
}

int Pfs::ost_of_file(std::uint64_t file_index) const {
  return static_cast<int>(file_index % osts_.size());
}

Ost& Pfs::ost(int index) {
  SENKF_REQUIRE(index >= 0 && index < ost_count(), "Pfs: OST out of range");
  return *osts_[index];
}

const Ost& Pfs::ost(int index) const {
  SENKF_REQUIRE(index >= 0 && index < ost_count(), "Pfs: OST out of range");
  return *osts_[index];
}

std::vector<int> Pfs::osts_of_file(std::uint64_t file_index) const {
  std::vector<int> out;
  out.reserve(config_.stripe_count);
  const int first = ost_of_file(file_index);
  for (int s = 0; s < config_.stripe_count; ++s) {
    out.push_back((first + s) % ost_count());
  }
  return out;
}

sim::Task Pfs::read(std::uint64_t file_index, std::uint64_t segments,
                    double bytes) {
  if (injector_ != nullptr) {
    return read_faulty(file_index, segments, bytes);
  }
  return issue(file_index, segments, bytes);
}

sim::Task Pfs::read_as(int tenant, std::uint64_t file_index,
                       std::uint64_t segments, double bytes) {
  const double t0 = sim_.now();
  // Nominal single-stream service time of the request on its home OST;
  // anything beyond it — slot queueing, stripe skew, fault retries — is
  // contention and billed as queued time.
  const double service =
      ost(ost_of_file(file_index)).service_time(segments, bytes);
  co_await read(file_index, segments, bytes);
  const double elapsed = sim_.now() - t0;
  TenantIoStats& stats = tenant_stats_[tenant];
  stats.reads += 1;
  stats.segments += segments;
  stats.bytes += bytes;
  stats.service_s += std::min(service, elapsed);
  stats.queued_s += std::max(0.0, elapsed - service);
  stats.elapsed_s += elapsed;
}

sim::Task Pfs::issue(std::uint64_t file_index, std::uint64_t segments,
                     double bytes) {
  if (config_.stripe_count == 1) {
    return ost(ost_of_file(file_index)).read(segments, bytes);
  }
  return read_striped(file_index, segments, bytes);
}

sim::Task Pfs::read_faulty(std::uint64_t file_index, std::uint64_t segments,
                           double bytes) {
  FaultMetrics& metrics = FaultMetrics::get();
  const std::uint64_t key = op_key(file_index, ops_issued_++);
  if (injector_->latency_factor(ost_of_file(file_index)) > 1.0) {
    metrics.slowed_reads.add(1);
    metrics.injected.add(1);
  }
  if (injector_->is_dead(file_index)) {
    // A reader re-issues until its retry budget (≥ the burst cap) runs
    // out, then gives up; the timing plane charges those wasted rounds.
    for (int i = 0; i < injector_->plan().max_burst; ++i) {
      co_await issue(file_index, segments, bytes);
    }
    metrics.dead_reads.add(1);
    metrics.injected.add(1);
    co_return;
  }
  const int failures = injector_->transient_burst(file_index, key);
  for (int i = 0; i < failures; ++i) {
    metrics.transient.add(1);
    metrics.injected.add(1);
    co_await issue(file_index, segments, bytes);
  }
  co_await issue(file_index, segments, bytes);
}

sim::Task Pfs::read_striped(std::uint64_t file_index, std::uint64_t segments,
                            double bytes) {
  // Fan the region out over the stripe OSTs; every stripe costs at least
  // one addressing operation, and the read completes with the slowest
  // sub-request.
  const std::vector<int> stripes = osts_of_file(file_index);
  const auto n = static_cast<std::uint64_t>(stripes.size());
  const double bytes_per_stripe = bytes / static_cast<double>(n);
  const std::uint64_t segs_per_stripe =
      segments >= n ? (segments + n - 1) / n : 1;

  sim::WaitGroup done(sim_);
  done.add(static_cast<int>(n));
  for (const int index : stripes) {
    sim_.spawn([](Ost& target, std::uint64_t segs, double b,
                  sim::WaitGroup& group) -> sim::Task {
      co_await target.read(segs, b);
      group.done();
    }(ost(index), segs_per_stripe, bytes_per_stripe, done));
  }
  co_await done.wait();
}

double Pfs::aggregate_bandwidth() const {
  return static_cast<double>(config_.ost_count) *
         static_cast<double>(config_.ost.max_streams) *
         config_.ost.stream_bandwidth;
}

double Pfs::total_bytes_read() const {
  double total = 0.0;
  for (const auto& ost : osts_) total += ost->bytes_read();
  return total;
}

double Pfs::total_queued_time() const {
  double total = 0.0;
  for (const auto& ost : osts_) total += ost->queued_time();
  return total;
}

}  // namespace senkf::pfs
