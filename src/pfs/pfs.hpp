// Parallel file system model (the Lustre/H2FS substitute, DESIGN.md §2).
//
// Structure — the part that is faithful to the paper's analysis:
//  * the ensemble lives in per-member files placed round-robin across
//    `ost_count` object storage targets (OSTs);
//  * an OST admits at most `max_streams` concurrent read streams (FIFO
//    queue beyond that — the "processors line up for the disk" effect of
//    §3.1);
//  * an admitted stream is charged `segments × segment_overhead_s` for
//    disk addressing plus `bytes / stream_bandwidth` for transfer, so a
//    block read (one non-contiguous segment per latitude row, §4.1.1)
//    pays O(rows) addressing while a bar read (§4.1.2) pays exactly one.
//
// Constants — calibrated, not physical: `segment_overhead_s` is the
// *effective* per-segment addressing cost per stream-slot, chosen together
// with the computation cost so the simulated P-EnKF reproduces the paper's
// observed behaviour (scaling stops near 8,000 cores, ≈3× gap at 12,000).
// EXPERIMENTS.md discusses the calibration.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "pfs/faults.hpp"
#include "sim/primitives.hpp"

namespace senkf::pfs {

/// Per-tenant I/O accounting for the service plane (DESIGN.md §14): every
/// read issued through Pfs::read_as bills its tenant with the bytes and
/// addressing operations it moved, the stream-slot service time it held a
/// disk slot for, and the time it spent queued behind other streams —
/// the fair-share scheduler's notion of disk consumption.
struct TenantIoStats {
  std::uint64_t reads = 0;
  std::uint64_t segments = 0;
  double bytes = 0.0;
  double service_s = 0.0;  ///< time holding stream slots (disk busy)
  double queued_s = 0.0;   ///< time waiting for a slot (contention + retries)
  double elapsed_s = 0.0;  ///< wall clock of the reads = service + queued
};

struct OstConfig {
  /// Effective per-contiguous-segment addressing cost (seconds).
  double segment_overhead_s = 140e-9;
  /// Bandwidth of one admitted stream (bytes/second).
  double stream_bandwidth = 200e6;
  /// Concurrent streams one OST admits before queueing.
  int max_streams = 8;
};

struct PfsConfig {
  int ost_count = 6;
  OstConfig ost;
  /// OSTs each file stripes across (Lustre's stripe_count).  1 = whole
  /// files on single OSTs — the placement §4.1.3's concurrent groups are
  /// designed for.  With striping > 1 a single file already enjoys
  /// multi-disk bandwidth but every read fans out into stripe_count
  /// sub-requests (more addressing, more queue slots); the
  /// abl_striping bench quantifies the trade.
  int stripe_count = 1;
  /// What misbehaves (DESIGN.md §9).  Latency inflation slows the
  /// affected OSTs' service times; transient faults charge re-issued
  /// reads; dead member files burn max_burst re-issues and return no
  /// data.  Default: a perfect disk.
  FaultPlan faults;
};

/// One object storage target: a counted stream resource plus accounting.
class Ost {
 public:
  Ost(sim::Simulation& sim, const OstConfig& config);

  /// Simulated read of `segments` non-contiguous segments totalling
  /// `bytes`: queues for a stream slot, then holds it for the service
  /// time.  Awaitable.
  sim::Task read(std::uint64_t segments, double bytes);

  /// Service time charged once a stream is admitted.
  double service_time(std::uint64_t segments, double bytes) const;

  double busy_time() const { return busy_time_; }
  double queued_time() const { return streams_.total_wait_time(); }
  double bytes_read() const { return bytes_read_; }

 private:
  sim::Simulation& sim_;
  OstConfig config_;
  sim::Resource streams_;
  double busy_time_ = 0.0;
  double bytes_read_ = 0.0;
};

/// The file system: files → OSTs placement plus global accounting.
class Pfs {
 public:
  Pfs(sim::Simulation& sim, const PfsConfig& config);

  int ost_count() const { return static_cast<int>(osts_.size()); }

  /// Round-robin placement: each ensemble-member file starts on OST
  /// file_index % ost_count (and, when striped, continues on the next
  /// stripe_count − 1 OSTs cyclically).
  int ost_of_file(std::uint64_t file_index) const;

  int stripe_count() const { return config_.stripe_count; }

  /// The OSTs holding file_index's data, in stripe order.
  std::vector<int> osts_of_file(std::uint64_t file_index) const;

  Ost& ost(int index);
  const Ost& ost(int index) const;

  /// Awaitable read of a region of `file_index`.  With stripe_count = 1
  /// this is one request on the file's OST; with striping the region
  /// fans out into one concurrent sub-request per stripe OST, each
  /// carrying its share of the bytes and at least one addressing
  /// operation, and the read completes when the slowest stripe does.
  /// Under a FaultPlan, transient faults charge re-issued requests and a
  /// dead file burns max_burst re-issues before the reader gives up.
  sim::Task read(std::uint64_t file_index, std::uint64_t segments,
                 double bytes);

  /// read() plus per-tenant slot accounting: the elapsed simulated time is
  /// split into the request's nominal service time (slot occupancy) and
  /// everything else (queueing, stripe skew, fault retries) and billed to
  /// `tenant` in tenant_stats().
  sim::Task read_as(int tenant, std::uint64_t file_index,
                    std::uint64_t segments, double bytes);

  /// Accumulated per-tenant accounting from read_as (empty for workflows
  /// that never attribute reads).
  const std::map<int, TenantIoStats>& tenant_stats() const {
    return tenant_stats_;
  }

  /// The plan's injector, or nullptr when no faults are configured.
  const FaultInjector* injector() const { return injector_.get(); }

  /// Aggregate peak bandwidth (every OST saturated), bytes/second.
  double aggregate_bandwidth() const;

  double total_bytes_read() const;
  double total_queued_time() const;

 private:
  sim::Task read_striped(std::uint64_t file_index, std::uint64_t segments,
                         double bytes);
  sim::Task read_faulty(std::uint64_t file_index, std::uint64_t segments,
                        double bytes);
  /// Fault-free dispatch shared by the healthy and degraded paths.
  sim::Task issue(std::uint64_t file_index, std::uint64_t segments,
                  double bytes);

  sim::Simulation& sim_;
  PfsConfig config_;
  std::vector<std::unique_ptr<Ost>> osts_;
  std::map<int, TenantIoStats> tenant_stats_;
  std::unique_ptr<FaultInjector> injector_;
  /// Deterministic per-read ordinal feeding the injector's op keys (the
  /// DES runs single-threaded, so issue order is reproducible).
  std::uint64_t ops_issued_ = 0;
};

}  // namespace senkf::pfs
