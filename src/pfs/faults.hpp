// Deterministic fault injection for the PFS planes (DESIGN.md §9).
//
// A `FaultPlan` describes how the file system misbehaves: per-OST latency
// inflation, transient EIO-style read failures (probability + bounded
// burst), permanently dead member files, and slow-straggler I/O ranks.
// One plan drives both planes:
//  * the DES model (pfs.cpp) charges inflated service times and re-issued
//    reads in *simulated* time;
//  * the numeric plane (enkf::FaultyEnsembleStore) turns the same
//    decisions into thrown TransientReadError / PermanentReadError and
//    real injected delays, which the S-EnKF read path must survive.
//
// Every decision is a pure hash of (plan seed, member, op key, draw
// index) — never a shared RNG stream — so outcomes are identical across
// runs and thread interleavings: a fixed fault seed gives a reproducible
// failure schedule, and the analysis stays bitwise-deterministic (§9
// explains why).  Injected events are counted under `pfs.fault.*` in the
// telemetry registry.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "telemetry/metrics.hpp"

namespace senkf::pfs {

/// A read failed this attempt but may succeed when retried (the moral
/// equivalent of EIO from a flaky OST).
class TransientReadError : public Error {
 public:
  explicit TransientReadError(const std::string& what) : Error(what) {}
};

/// The data can never be produced (dead stripe / unreadable member file);
/// retrying is pointless and callers must degrade instead.
class PermanentReadError : public Error {
 public:
  explicit PermanentReadError(const std::string& what) : Error(what) {}
};

/// What the injected file system does wrong.  Value-semantic and
/// round-trippable through the `SENKF_FAULTS` spec string (to_spec /
/// parse_fault_plan).
struct FaultPlan {
  /// Seed of every fault decision; two runs with the same plan see the
  /// same failure schedule.
  std::uint64_t seed = 0;

  /// Probability that a distinct read operation fails at least once
  /// before succeeding (per-read, in [0, 1)).
  double transient_p = 0.0;

  /// Upper bound on consecutive transient failures of one operation: a
  /// faulty op fails between 1 and max_burst attempts, then succeeds.
  /// Keep below the retry policy's max_attempts so transient faults stay
  /// survivable (validated by parse_fault_plan).
  int max_burst = 3;

  /// Member files that are permanently unreadable (every read throws
  /// PermanentReadError; the DES plane charges max_burst re-issues and
  /// gives up).
  std::vector<std::uint64_t> dead_members;

  /// Per-OST service-time inflation: reads hitting `ost` run `factor`×
  /// slower (factor > 1).
  struct SlowOst {
    int ost = 0;
    double factor = 1.0;
    friend bool operator==(const SlowOst&, const SlowOst&) = default;
  };
  std::vector<SlowOst> slow_osts;

  /// Service-time inflation applied to every OST (1.0 = none).
  double latency_factor = 1.0;

  /// Straggler I/O ranks: rank `io_rank` (0-based ordinal among the I/O
  /// ranks) pays `delay_s` extra wall-clock per bar read — the knob the
  /// straggler re-issue path is tested against.
  struct Straggler {
    int io_rank = 0;
    double delay_s = 0.0;
    friend bool operator==(const Straggler&, const Straggler&) = default;
  };
  std::vector<Straggler> stragglers;

  /// True when the plan injects anything at all.
  bool enabled() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Parses a `SENKF_FAULTS` spec: comma-separated key=value entries
///   seed=U       fault seed
///   transient=P  per-read transient failure probability, [0, 1)
///   burst=N      max consecutive failures per op (1 ≤ N)
///   dead=K       member K permanently unreadable (repeatable)
///   slow_ost=I:F OST I serves F× slower (repeatable, F > 1)
///   latency=F    every OST serves F× slower (F ≥ 1)
///   straggler=R:S  I/O rank ordinal R pays S seconds extra per read
///                  (repeatable)
/// Malformed specs throw InvalidArgument naming the offending entry.
FaultPlan parse_fault_plan(std::string_view spec);

/// Canonical spec string; parse_fault_plan(to_spec(p)) == p.
std::string to_spec(const FaultPlan& plan);

/// Reads SENKF_FAULTS; unset, empty or "off" → nullopt.
std::optional<FaultPlan> fault_plan_from_env();

/// Capped exponential backoff with deterministic jitter; the retry policy
/// of every degraded read path.
struct RetryPolicy {
  /// Total tries including the first; exhausting them converts the
  /// transient failure into a PermanentReadError.
  int max_attempts = 6;
  std::chrono::nanoseconds base_delay{1'000'000};  // 1 ms
  double backoff_factor = 2.0;
  std::chrono::nanoseconds max_delay{64'000'000};  // 64 ms cap
  /// Jitter fraction in [0, 1): the delay is scaled by a deterministic
  /// factor drawn from [1 − jitter, 1 + jitter) keyed on (salt, attempt).
  double jitter = 0.25;

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// Pure function of (policy, salt, attempt ≥ 1): the pause before retry
/// `attempt`, i.e. base · factor^(attempt−1), capped, jittered.  Tests
/// assert its bounds on a virtual clock — no sleeping involved.
std::chrono::nanoseconds backoff_delay(const RetryPolicy& policy,
                                       std::uint64_t salt, int attempt);

/// How a retry loop pauses; injectable so tests can use a virtual clock.
using Sleeper = std::function<void(std::chrono::nanoseconds)>;

/// The production sleeper: std::this_thread::sleep_for.
Sleeper real_sleeper();

/// Stable 64-bit key for a read operation (splitmix-style mix of two
/// words, e.g. a row range); feeds the injector's per-op fault draws.
std::uint64_t op_key(std::uint64_t a, std::uint64_t b);

/// Counters every injection site reports into (`pfs.fault.*`).
struct FaultMetrics {
  telemetry::Counter& injected;        ///< pfs.fault.injected — all events
  telemetry::Counter& transient;       ///< pfs.fault.transient
  telemetry::Counter& dead_reads;      ///< pfs.fault.dead_reads
  telemetry::Counter& straggler_ns;    ///< pfs.fault.straggler_delay_ns
  telemetry::Counter& slowed_reads;    ///< pfs.fault.slowed_reads
  static FaultMetrics& get();
};

/// Turns a FaultPlan into per-read decisions.  Decision functions are
/// deterministic in (seed, member, op key); the only state is the per-op
/// attempt ledger that makes a faulty op fail its first `burst` calls and
/// then succeed forever (so retries always converge).  Thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  /// Permanently unreadable member file?
  bool is_dead(std::uint64_t member) const;

  /// Failures this op will suffer before succeeding (0 = clean): pure in
  /// (seed, member, key).
  int transient_burst(std::uint64_t member, std::uint64_t key) const;

  /// Stateful draw for the numeric plane: true while the op's burst is
  /// unconsumed (each call consumes one failure).  Counts the event.
  bool next_read_fails(std::uint64_t member, std::uint64_t key) const;

  /// Combined service-time factor for reads hitting `ost` (≥ 1).
  double latency_factor(int ost) const;

  /// Extra delay injected per read for I/O rank ordinal `io_rank`
  /// (zero when the rank is not a straggler).
  std::chrono::nanoseconds straggler_delay(int io_rank) const;

 private:
  FaultPlan plan_;
  mutable std::mutex mutex_;
  mutable std::map<std::pair<std::uint64_t, std::uint64_t>, int> consumed_;
};

/// Runs `op` under the retry policy: TransientReadError triggers a
/// backoff pause (via `sleep`) and another try; exhausting max_attempts
/// rethrows as PermanentReadError.  `on_retry`, when set, observes each
/// retry (for counters).  Deterministic given a deterministic op.
template <typename F>
auto with_retry(const RetryPolicy& policy, std::uint64_t salt,
                const Sleeper& sleep, F&& op,
                const std::function<void(int)>& on_retry = nullptr)
    -> decltype(op()) {
  SENKF_REQUIRE(policy.max_attempts >= 1,
                "with_retry: need at least one attempt");
  for (int attempt = 1;; ++attempt) {
    try {
      return op();
    } catch (const TransientReadError& error) {
      if (attempt >= policy.max_attempts) {
        throw PermanentReadError(std::string("retries exhausted after ") +
                                 std::to_string(attempt) +
                                 " attempts: " + error.what());
      }
      if (on_retry) on_retry(attempt);
      sleep(backoff_delay(policy, salt, attempt));
    }
  }
}

}  // namespace senkf::pfs
