#include "service/rank_set.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace senkf::service {

RankAllocator::RankAllocator(std::uint64_t total_ranks) : total_(total_ranks) {
  SENKF_REQUIRE(total_ranks > 0, "RankAllocator: need at least one rank");
  free_.push_back(Interval{0, total_ranks});
}

std::uint64_t RankAllocator::free_ranks() const {
  std::uint64_t total = 0;
  for (const Interval& hole : free_) total += hole.count;
  return total;
}

std::uint64_t RankAllocator::largest_hole() const {
  std::uint64_t best = 0;
  for (const Interval& hole : free_) best = std::max(best, hole.count);
  return best;
}

bool RankAllocator::can_allocate(std::uint64_t count) const {
  return count > 0 && largest_hole() >= count;
}

std::optional<std::uint64_t> RankAllocator::allocate(std::uint64_t count) {
  SENKF_REQUIRE(count > 0, "RankAllocator: cannot allocate zero ranks");
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].count < count) continue;
    const std::uint64_t lo = free_[i].lo;
    free_[i].lo += count;
    free_[i].count -= count;
    if (free_[i].count == 0) {
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return lo;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> RankAllocator::allocate_from_top(
    std::uint64_t count) {
  SENKF_REQUIRE(count > 0, "RankAllocator: cannot allocate zero ranks");
  for (std::size_t i = free_.size(); i-- > 0;) {
    if (free_[i].count < count) continue;
    free_[i].count -= count;
    const std::uint64_t lo = free_[i].lo + free_[i].count;
    if (free_[i].count == 0) {
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return lo;
  }
  return std::nullopt;
}

void RankAllocator::release(std::uint64_t lo, std::uint64_t count) {
  SENKF_REQUIRE(count > 0 && lo + count <= total_,
                "RankAllocator: release outside the cluster");
  const auto at = std::lower_bound(
      free_.begin(), free_.end(), lo,
      [](const Interval& hole, std::uint64_t value) { return hole.lo < value; });
  // The released interval must not overlap its neighbours (double release
  // or a carve the allocator never handed out).
  if (at != free_.begin()) {
    const Interval& prev = *(at - 1);
    SENKF_REQUIRE(prev.lo + prev.count <= lo,
                  "RankAllocator: release overlaps a free interval");
  }
  if (at != free_.end()) {
    SENKF_REQUIRE(lo + count <= at->lo,
                  "RankAllocator: release overlaps a free interval");
  }
  auto inserted = free_.insert(at, Interval{lo, count});
  // Coalesce with the next interval, then with the previous one.
  const auto next = inserted + 1;
  if (next != free_.end() && inserted->lo + inserted->count == next->lo) {
    inserted->count += next->count;
    inserted = free_.erase(next) - 1;
  }
  if (inserted != free_.begin()) {
    const auto prev = inserted - 1;
    if (prev->lo + prev->count == inserted->lo) {
      prev->count += inserted->count;
      free_.erase(inserted);
    }
  }
}

}  // namespace senkf::service
