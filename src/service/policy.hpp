// Pluggable scheduling policies for the assimilation service
// (DESIGN.md §14).
//
// The dispatcher reduces every policy to one pure decision: given the
// pending queue (in arrival order) and which entries currently fit the
// free ranks + disk-concurrency slots, which job starts next?
//
//  * FIFO          — strict arrival order, no backfill: when the head
//                    does not fit, nothing starts (head-of-line blocking
//                    is the point of the baseline).
//  * fair-share    — tenants ordered by weighted disk-slot-seconds
//                    billed so far; the least-billed tenant's oldest
//                    fitting job starts.  Backfills across tenants, so a
//                    burst-heavy tenant cannot starve the others.
//  * deadline      — EDF over absolute deadlines with cost-model
//                    predicted runtimes billed at dispatch; backfills
//                    past jobs that do not fit.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace senkf::service {

enum class Policy {
  kFifo,
  kFairShare,
  kDeadline,
};

/// Stable short name ("fifo", "fair-share", "deadline").
const char* policy_name(Policy policy);

/// Parses a policy spec ("fifo" | "fair-share"/"fair"/"fairshare" |
/// "deadline"/"deadline-aware"/"edf"); throws InvalidArgument otherwise.
Policy parse_policy(const std::string& spec);

/// SENKF_SERVICE_POLICY from the environment; unset/empty means FIFO.
Policy policy_from_env();

/// The dispatcher's per-candidate view of one pending job.
struct Candidate {
  std::size_t index = 0;       ///< position in the pending queue
  std::string tenant;
  double arrival_s = 0.0;
  double deadline_abs_s = 0.0; ///< arrival + relative deadline
  double predicted_s = 0.0;
  bool fits = false;           ///< free ranks + io slots admit it right now
};

/// Picks the pending-queue index of the job to start next, or nullopt when
/// the policy starts nothing.  `pending` must be in arrival order;
/// `billed_usage` maps tenant -> weighted disk-slot-seconds consumed (the
/// fair-share ordering key; tenants absent from the map have consumed
/// nothing).  Under fair-share a candidate's effective billing is
/// `billed − aging_rate × (now_s − arrival)`: every second a job queues
/// forgives `aging_rate` slot-seconds of its tenant's consumption, so
/// even the heaviest biller's wait is bounded (no strict-priority
/// starvation).  Deterministic: ties break on arrival time, then queue
/// index.
std::optional<std::size_t> pick_next(
    Policy policy, const std::vector<Candidate>& pending,
    const std::map<std::string, double>& billed_usage, double now_s,
    double aging_rate);

}  // namespace senkf::service
