// Disjoint rank-set carving for concurrent jobs (DESIGN.md §14).
//
// The cluster's ranks form one interval [0, total); every admitted job
// gets a contiguous sub-interval, first-fit into the lowest-addressed
// hole that is large enough.  First-fit keeps the allocator deterministic
// (same request sequence, same placement) and contiguous intervals make
// the "disjoint rank sets" invariant trivially checkable from the job
// records alone.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace senkf::service {

class RankAllocator {
 public:
  explicit RankAllocator(std::uint64_t total_ranks);

  std::uint64_t total_ranks() const { return total_; }
  std::uint64_t free_ranks() const;
  /// Size of the largest free interval — what can actually be carved.
  std::uint64_t largest_hole() const;
  bool can_allocate(std::uint64_t count) const;

  /// Carves `count` ranks out of the lowest-addressed sufficient hole;
  /// returns the interval's first rank, or nullopt when no hole fits.
  std::optional<std::uint64_t> allocate(std::uint64_t count);

  /// Carves from the *top* of the highest-addressed sufficient hole.
  /// The scheduler sends narrow jobs here and wide jobs to allocate(),
  /// segregating the address space so narrow carve-outs do not fragment
  /// the large contiguous holes wide jobs need.
  std::optional<std::uint64_t> allocate_from_top(std::uint64_t count);

  /// Returns a previously carved interval.  Adjacent free intervals are
  /// coalesced, so release order never causes permanent fragmentation.
  void release(std::uint64_t lo, std::uint64_t count);

 private:
  struct Interval {
    std::uint64_t lo;
    std::uint64_t count;
  };

  std::uint64_t total_;
  /// Free intervals, sorted by lo, pairwise disjoint and non-adjacent.
  std::vector<Interval> free_;
};

}  // namespace senkf::service
