#include "service/policy.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace senkf::service {

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFifo: return "fifo";
    case Policy::kFairShare: return "fair-share";
    case Policy::kDeadline: return "deadline";
  }
  return "unknown";
}

Policy parse_policy(const std::string& spec) {
  if (spec == "fifo") return Policy::kFifo;
  if (spec == "fair-share" || spec == "fair" || spec == "fairshare") {
    return Policy::kFairShare;
  }
  if (spec == "deadline" || spec == "deadline-aware" || spec == "edf") {
    return Policy::kDeadline;
  }
  throw InvalidArgument("SENKF_SERVICE_POLICY: unknown policy '" + spec +
                        "' (want fifo | fair-share | deadline)");
}

Policy policy_from_env() {
  const char* spec = std::getenv("SENKF_SERVICE_POLICY");
  if (spec == nullptr || spec[0] == '\0') return Policy::kFifo;
  return parse_policy(spec);
}

namespace {

/// Earlier arrival wins; queue index is the final, total tie-break.
bool arrives_before(const Candidate& a, const Candidate& b) {
  if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
  return a.index < b.index;
}

std::optional<std::size_t> pick_fifo(const std::vector<Candidate>& pending) {
  // Strict arrival order: only the head may start.  When the head does
  // not fit, everything behind it waits — the baseline's head-of-line
  // blocking that the other policies exist to remove.
  const Candidate* head = nullptr;
  for (const Candidate& c : pending) {
    if (head == nullptr || arrives_before(c, *head)) head = &c;
  }
  if (head == nullptr || !head->fits) return std::nullopt;
  return head->index;
}

std::optional<std::size_t> pick_deadline(
    const std::vector<Candidate>& pending) {
  const Candidate* best = nullptr;
  for (const Candidate& c : pending) {
    if (!c.fits) continue;
    if (best == nullptr || c.deadline_abs_s < best->deadline_abs_s ||
        (c.deadline_abs_s == best->deadline_abs_s &&
         arrives_before(c, *best))) {
      best = &c;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->index;
}

std::optional<std::size_t> pick_fair_share(
    const std::vector<Candidate>& pending,
    const std::map<std::string, double>& billed_usage, double now_s,
    double aging_rate) {
  const Candidate* best = nullptr;
  double best_usage = 0.0;
  for (const Candidate& c : pending) {
    if (!c.fits) continue;
    const auto it = billed_usage.find(c.tenant);
    // Aging bounds starvation: a queued job forgives aging_rate
    // slot-seconds of its tenant's billing per second of wait, so a
    // heavily billed tenant's job eventually outranks fresher arrivals
    // instead of waiting forever behind them.
    const double usage = (it == billed_usage.end() ? 0.0 : it->second) -
                         aging_rate * (now_s - c.arrival_s);
    // Equal billing degrades gracefully to arrival order (backfilling
    // FIFO), so an idle service treats its first burst fairly.
    if (best == nullptr || usage < best_usage ||
        (usage == best_usage && arrives_before(c, *best))) {
      best = &c;
      best_usage = usage;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->index;
}

}  // namespace

std::optional<std::size_t> pick_next(
    Policy policy, const std::vector<Candidate>& pending,
    const std::map<std::string, double>& billed_usage, double now_s,
    double aging_rate) {
  switch (policy) {
    case Policy::kFifo: return pick_fifo(pending);
    case Policy::kFairShare:
      return pick_fair_share(pending, billed_usage, now_s, aging_rate);
    case Policy::kDeadline: return pick_deadline(pending);
  }
  return std::nullopt;
}

}  // namespace senkf::service
