#include "service/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "net/net.hpp"
#include "service/rank_set.hpp"
#include "service/reuse.hpp"
#include "sim/primitives.hpp"
#include "sim/simulation.hpp"
#include "support/error.hpp"
#include "telemetry/liveops/jobs.hpp"
#include "telemetry/liveops/liveops.hpp"
#include "telemetry/liveops/profiler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "tuning/auto_tune.hpp"

namespace senkf::service {

namespace {

/// One admitted job's tuned execution plan.
struct JobPlan {
  bool feasible = false;
  std::string reason;  ///< set iff !feasible
  vcluster::SenkfParams params;
  std::uint64_t ranks_needed = 0;  ///< c1 + c2
  std::uint64_t io_slots = 0;      ///< c1 = n_cg · n_sdy
  double predicted_s = 0.0;
};

struct PendingJob {
  std::size_t index = 0;  ///< position in ServiceState::records
  JobPlan plan;
};

/// Stage geometry of one job's pipeline — the same formulas as
/// vcluster's SenkfFabric, rebuilt here because service jobs share one
/// Simulation + Pfs instead of owning a private pair.
struct CycleGeometry {
  std::uint64_t stage_rows = 0;
  double stage_bar_bytes = 0.0;
  double message_bytes = 0.0;
  double compute_per_stage = 0.0;
  /// PFS bytes one cycle reads (what a cache hit saves).
  double read_bytes = 0.0;
};

CycleGeometry cycle_geometry(const vcluster::MachineConfig& machine,
                             const JobSpec& spec,
                             const vcluster::SenkfParams& p) {
  const vcluster::SimWorkload& w = spec.workload;
  CycleGeometry g;
  const std::uint64_t rows_per_stage = w.rows_per_stage(p.n_sdy, p.layers);
  g.stage_rows = rows_per_stage + 2 * w.halo_eta;
  g.stage_bar_bytes = static_cast<double>(g.stage_rows) *
                      static_cast<double>(w.nx) * w.point_bytes();
  const double block_cols = static_cast<double>(w.nx / p.n_sdx) +
                            2.0 * static_cast<double>(w.halo_xi);
  g.message_bytes = static_cast<double>(g.stage_rows) * block_cols *
                    w.point_bytes() *
                    static_cast<double>(w.members / p.n_cg);
  // Observation density scales the per-point analysis cost; the machine's
  // analysis_speedup divides it exactly as in the cost model's T_comp.
  g.compute_per_stage = machine.update_cost_per_point_s * spec.obs_density /
                        machine.analysis_speedup *
                        static_cast<double>(w.nx / p.n_sdx) *
                        static_cast<double>(rows_per_stage);
  g.read_bytes = static_cast<double>(p.n_sdy) *
                 static_cast<double>(w.members) *
                 static_cast<double>(p.layers) * g.stage_bar_bytes;
  return g;
}

/// Everything one Scheduler::run shares across jobs: the simulation, the
/// PFS, the rank allocator, the reuse structures and the accounting.
struct ServiceState {
  explicit ServiceState(const ServiceConfig& cfg)
      : config(cfg),
        storage(sim, cfg.machine.pfs),
        network(cfg.machine.net),
        allocator(cfg.total_ranks),
        cache(cfg.cache_capacity_bytes) {
    io_slot_budget =
        cfg.io_slot_budget > 0
            ? cfg.io_slot_budget
            : static_cast<std::uint64_t>(cfg.machine.pfs.ost_count) *
                  static_cast<std::uint64_t>(cfg.machine.pfs.ost.max_streams);
    io_slots_free = io_slot_budget;
  }

  double weight(const std::string& tenant) const {
    const auto it = config.tenant_weights.find(tenant);
    return it == config.tenant_weights.end() ? 1.0 : it->second;
  }

  int tenant_id(const std::string& tenant) {
    const auto it = tenant_ids.find(tenant);
    if (it != tenant_ids.end()) return it->second;
    const int id = static_cast<int>(tenant_ids.size());
    tenant_ids.emplace(tenant, id);
    return id;
  }

  JobPlan plan_for(const JobSpec& spec);

  const ServiceConfig& config;
  sim::Simulation sim;
  pfs::Pfs storage;
  net::Net network;
  RankAllocator allocator;
  BarReadCache cache;
  SharedBufferPool pool;
  std::uint64_t io_slot_budget = 0;
  std::uint64_t io_slots_free = 0;
  std::vector<JobRecord> records;
  /// Admitted, not yet started; always in arrival order.
  std::vector<PendingJob> pending;
  /// Tenant -> weighted disk-slot-seconds (the fair-share ledger).
  std::map<std::string, double> billed;
  std::map<std::string, int> tenant_ids;
  std::map<std::string, JobPlan> plan_cache;
  std::uint64_t running = 0;
  std::uint64_t peak_running = 0;
};

JobPlan ServiceState::plan_for(const JobSpec& spec) {
  std::ostringstream key;
  key << spec.workload.nx << 'x' << spec.workload.ny << 'x'
      << spec.workload.levels << '/' << spec.workload.members << '/'
      << spec.workload.halo_xi << ',' << spec.workload.halo_eta << '/'
      << spec.workload.bytes_per_point << '@' << spec.ranks << '/'
      << spec.obs_density << '/' << spec.cycles;
  const auto cached = plan_cache.find(key.str());
  if (cached != plan_cache.end()) return cached->second;

  JobPlan plan;
  try {
    SENKF_REQUIRE(spec.ranks >= 2,
                  "service: a job needs at least 2 ranks "
                  "(one I/O group + one computation processor)");
    tuning::CostModelParams mp =
        tuning::params_from(config.machine, spec.workload);
    mp.c *= spec.obs_density;
    const tuning::CostModel model(mp);
    const tuning::AutoTuneResult tuned =
        tuning::auto_tune(model, spec.ranks, config.epsilon);
    plan.feasible = true;
    plan.params = tuned.params;
    plan.ranks_needed = tuned.c1 + tuned.c2;
    plan.io_slots = tuned.c1;
    plan.predicted_s =
        tuning::predict_runtime(model, tuned.params, spec.cycles);
  } catch (const std::exception& e) {
    plan.feasible = false;
    plan.reason = std::string("no feasible configuration: ") + e.what();
  }
  plan_cache.emplace(key.str(), plan);
  return plan;
}

/// The WaitGroup fabric of one cycle of one job, living on the frame of
/// run_cycle below (which outlives every task that references it).
struct CycleFabric {
  CycleFabric(ServiceState& st, const JobSpec& spec,
              const vcluster::SenkfParams& params)
      : p(params), geo(cycle_geometry(st.config.machine, spec, params)),
        procs_done(st.sim) {
    for (std::uint64_t l = 0; l < p.layers; ++l) {
      compute_done.push_back(std::make_unique<sim::WaitGroup>(st.sim));
      compute_done.back()->add(static_cast<int>(p.n_sdy));
    }
    arrivals.reserve(p.n_sdy * p.layers);
    for (std::uint64_t i = 0; i < p.n_sdy * p.layers; ++i) {
      arrivals.push_back(std::make_unique<sim::WaitGroup>(st.sim));
      arrivals.back()->add(static_cast<int>(p.n_cg));
    }
    procs_done.add(static_cast<int>(p.io_processors() + p.n_sdy));
  }

  sim::WaitGroup& arrival(std::uint64_t row, std::uint64_t stage) {
    return *arrivals[row * p.layers + stage];
  }

  vcluster::SenkfParams p;
  CycleGeometry geo;
  std::vector<std::unique_ptr<sim::WaitGroup>> compute_done;
  std::vector<std::unique_ptr<sim::WaitGroup>> arrivals;
  sim::WaitGroup procs_done;
};

/// One I/O group row of one cycle: flow-controlled bar reads (from the
/// shared PFS, billed to the tenant, or from the bar cache) followed by
/// the serialized scatter to the row's computation processors.
sim::Task cycle_io_proc(ServiceState& st, CycleFabric& f, const JobSpec& spec,
                        int tenant, bool from_cache, std::uint64_t group,
                        std::uint64_t row) {
  for (std::uint64_t l = 0; l < f.p.layers; ++l) {
    // Stay one stage ahead of the computation (Fig. 8's flow control).
    if (l >= 2) co_await f.compute_done[l - 2]->wait();
    for (std::uint64_t file = group; file < spec.workload.members;
         file += f.p.n_cg) {
      if (from_cache) {
        co_await st.sim.delay(f.geo.stage_bar_bytes /
                              st.config.cache_bandwidth);
      } else {
        co_await st.storage.read_as(tenant, spec.file_base + file, 1,
                                    f.geo.stage_bar_bytes);
      }
    }
    co_await st.sim.delay(st.network.serialized_sends_time(
        static_cast<int>(f.p.n_sdx), f.geo.message_bytes));
    f.arrival(row, l).done();
  }
  f.procs_done.done();
}

sim::Task cycle_comp_row(ServiceState& st, CycleFabric& f, std::uint64_t row) {
  for (std::uint64_t l = 0; l < f.p.layers; ++l) {
    co_await f.arrival(row, l).wait();
    co_await st.sim.delay(f.geo.compute_per_stage);
    f.compute_done[l]->done();
  }
  f.procs_done.done();
}

sim::Task run_cycle(ServiceState& st, const JobSpec& spec,
                    const vcluster::SenkfParams& params, int tenant,
                    bool from_cache) {
  CycleFabric fabric(st, spec, params);
  for (std::uint64_t g = 0; g < params.n_cg; ++g) {
    for (std::uint64_t j = 0; j < params.n_sdy; ++j) {
      st.sim.spawn(cycle_io_proc(st, fabric, spec, tenant, from_cache, g, j));
    }
  }
  for (std::uint64_t j = 0; j < params.n_sdy; ++j) {
    st.sim.spawn(cycle_comp_row(st, fabric, j));
  }
  co_await fabric.procs_done.wait();
}

void try_dispatch(ServiceState& st);

sim::Task run_job(ServiceState& st, std::size_t index, JobPlan plan,
                  std::uint64_t rank_lo) {
  JobRecord& rec = st.records[index];
  const JobSpec& spec = rec.spec;
  rec.start_s = st.sim.now();
  rec.queue_wait_s = rec.start_s - spec.arrival_s;
  rec.rank_lo = rank_lo;
  rec.ranks_used = plan.ranks_needed;
  telemetry::liveops::JobTable::global().record_running(spec.id, rec.start_s,
                                                        plan.ranks_needed);
  rec.io_slots = plan.io_slots;
  rec.params = plan.params;
  st.running += 1;
  st.peak_running = std::max(st.peak_running, st.running);

  // Bill the fair-share ledger at dispatch with the predicted cost so the
  // policy reacts to a tenant's consumption *while* its jobs run; the
  // delta to the actual cost is settled at completion.
  const double weight = st.weight(spec.tenant);
  st.billed[spec.tenant] +=
      static_cast<double>(plan.io_slots) * plan.predicted_s / weight;

  const int tenant = st.tenant_id(spec.tenant);
  const CycleGeometry geo =
      cycle_geometry(st.config.machine, spec, plan.params);

  SharedBufferPool::JobBuffers buffers;
  if (st.config.reuse_enabled) {
    buffers = st.pool.acquire(plan.params.io_processors(),
                              static_cast<std::size_t>(geo.message_bytes));
    rec.pool_hits = buffers.hits;
    rec.pool_misses = buffers.misses;
    if (buffers.misses > 0) {
      co_await st.sim.delay(static_cast<double>(buffers.misses) *
                            st.config.alloc_overhead_s);
    }
  }

  // A prior job with the same ensemble signature (same tenant, file
  // range, grid) left the bars resident; cycles after a job's first
  // always reuse its own reads.
  const bool resident = st.config.reuse_enabled && st.cache.lookup(spec);
  for (std::uint64_t cycle = 0; cycle < spec.cycles; ++cycle) {
    const bool from_cache =
        st.config.reuse_enabled && (resident || cycle > 0);
    if (from_cache) {
      rec.cache_hits += 1;
      rec.cache_saved_bytes += geo.read_bytes;
    }
    co_await run_cycle(st, spec, plan.params, tenant, from_cache);
  }
  if (st.config.reuse_enabled) {
    st.cache.insert(spec);
    st.pool.release(std::move(buffers));
  }

  rec.end_s = st.sim.now();
  rec.run_s = rec.end_s - rec.start_s;
  rec.deadline_met =
      spec.deadline_s > 0.0 && rec.latency_s() <= spec.deadline_s;
  telemetry::liveops::JobTable::global().record_done(spec.id, rec.end_s,
                                                     rec.deadline_met);
  // Settle the billing to the actual slot-seconds consumed.
  st.billed[spec.tenant] += static_cast<double>(plan.io_slots) *
                            (rec.run_s - plan.predicted_s) / weight;

  st.running -= 1;
  st.allocator.release(rank_lo, plan.ranks_needed);
  st.io_slots_free += plan.io_slots;
  try_dispatch(st);
}

void try_dispatch(ServiceState& st) {
  while (!st.pending.empty()) {
    std::vector<Candidate> candidates;
    candidates.reserve(st.pending.size());
    for (std::size_t i = 0; i < st.pending.size(); ++i) {
      const PendingJob& pj = st.pending[i];
      const JobSpec& spec = st.records[pj.index].spec;
      Candidate c;
      c.index = i;
      c.tenant = spec.tenant;
      c.arrival_s = spec.arrival_s;
      c.deadline_abs_s = spec.arrival_s + spec.deadline_s;
      c.predicted_s = pj.plan.predicted_s;
      c.fits = pj.plan.io_slots <= st.io_slots_free &&
               st.allocator.can_allocate(pj.plan.ranks_needed);
      candidates.push_back(std::move(c));
    }
    const std::optional<std::size_t> pick =
        pick_next(st.config.policy, candidates, st.billed, st.sim.now(),
                  st.config.fair_aging_rate);
    if (!pick.has_value()) return;
    const PendingJob pj = st.pending[*pick];
    st.pending.erase(st.pending.begin() +
                     static_cast<std::ptrdiff_t>(*pick));
    // Segregate the rank space: narrow jobs carve from the top so they
    // never fragment the big contiguous holes wide jobs need (an
    // interleaving policy would otherwise starve wide jobs on a cluster
    // with plenty of free — but scattered — ranks).
    const bool narrow =
        pj.plan.ranks_needed * 4 <= st.allocator.total_ranks();
    const std::optional<std::uint64_t> lo =
        narrow ? st.allocator.allocate_from_top(pj.plan.ranks_needed)
               : st.allocator.allocate(pj.plan.ranks_needed);
    SENKF_REQUIRE(lo.has_value(),
                  "service: policy picked a job that does not fit");
    st.io_slots_free -= pj.plan.io_slots;
    st.sim.spawn(run_job(st, pj.index, pj.plan, *lo));
  }
}

void reject(JobRecord& rec, std::string reason) {
  rec.admitted = false;
  rec.reject_reason = std::move(reason);
  telemetry::liveops::JobTable::global().record_rejected(
      rec.spec.id, rec.spec.tenant, rec.spec.arrival_s, rec.reject_reason);
}

sim::Task arrive(ServiceState& st, std::size_t index) {
  co_await st.sim.delay(st.records[index].spec.arrival_s);
  JobRecord& rec = st.records[index];
  const JobSpec& spec = rec.spec;
  if (spec.deadline_s < 0.0) {
    reject(rec, "negative deadline");
    co_return;
  }
  const JobPlan plan = st.plan_for(spec);
  if (!plan.feasible) {
    reject(rec, plan.reason);
    co_return;
  }
  if (plan.ranks_needed > st.allocator.total_ranks()) {
    std::ostringstream why;
    why << "needs " << plan.ranks_needed << " ranks; cluster has "
        << st.allocator.total_ranks();
    reject(rec, why.str());
    co_return;
  }
  if (plan.io_slots > st.io_slot_budget) {
    std::ostringstream why;
    why << "needs " << plan.io_slots << " disk-concurrency slots; budget is "
        << st.io_slot_budget;
    reject(rec, why.str());
    co_return;
  }
  rec.admitted = true;
  rec.predicted_s = plan.predicted_s;
  st.tenant_id(spec.tenant);  // assign ids in arrival order
  telemetry::liveops::JobTable::global().record_queued(spec.id, spec.tenant,
                                                       spec.arrival_s);
  st.pending.push_back(PendingJob{index, plan});
  try_dispatch(st);
}

/// Quantile of a sorted sample (nearest-rank definition).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t i = static_cast<std::size_t>(
      std::clamp(rank - 1.0, 0.0, static_cast<double>(sorted.size() - 1)));
  return sorted[i];
}

ServiceResult finish(ServiceState& st) {
  ServiceResult result;
  result.policy = st.config.policy;
  result.makespan_s = st.sim.now();
  result.peak_concurrent_jobs = st.peak_running;

  std::vector<double> latencies;
  std::map<std::string, std::vector<double>> tenant_latencies;
  for (const JobRecord& rec : st.records) {
    TenantSummary& tenant = result.tenants[rec.spec.tenant];
    tenant.jobs += 1;
    if (!rec.admitted) {
      tenant.rejected += 1;
      result.rejected += 1;
      continue;
    }
    tenant.admitted += 1;
    result.admitted += 1;
    if (rec.deadline_met) {
      tenant.met += 1;
      result.deadlines_met += 1;
    } else {
      tenant.missed += 1;
      result.deadlines_missed += 1;
    }
    tenant.run_s += rec.run_s;
    tenant.queue_wait_s += rec.queue_wait_s;
    tenant.max_wait_s = std::max(tenant.max_wait_s, rec.queue_wait_s);
    latencies.push_back(rec.latency_s());
    tenant_latencies[rec.spec.tenant].push_back(rec.latency_s());
    result.cache_hits += rec.cache_hits;
    result.cache_saved_bytes += rec.cache_saved_bytes;
    result.pool_hits += rec.pool_hits;
    result.pool_misses += rec.pool_misses;
  }

  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    result.mean_latency_s = sum / static_cast<double>(latencies.size());
    result.p50_latency_s = quantile(latencies, 0.50);
    result.p99_latency_s = quantile(latencies, 0.99);
  }
  for (auto& [name, sample] : tenant_latencies) {
    std::sort(sample.begin(), sample.end());
    TenantSummary& tenant = result.tenants[name];
    tenant.p99_latency_s = quantile(sample, 0.99);
    result.worst_tenant_p99_s =
        std::max(result.worst_tenant_p99_s, tenant.p99_latency_s);
  }
  for (const auto& [name, billed] : st.billed) {
    result.tenants[name].billed_slot_seconds = billed;
  }
  if (result.makespan_s > 0.0) {
    result.jobs_per_hour =
        static_cast<double>(result.admitted) * 3600.0 / result.makespan_s;
  }
  for (const auto& [name, id] : st.tenant_ids) {
    const auto it = st.storage.tenant_stats().find(id);
    if (it != st.storage.tenant_stats().end()) {
      result.tenant_io.emplace(name, it->second);
    }
  }
  result.records = std::move(st.records);
  return result;
}

}  // namespace

Scheduler::Scheduler(ServiceConfig config) : config_(std::move(config)) {
  SENKF_REQUIRE(config_.total_ranks > 0, "service: cluster needs ranks");
  SENKF_REQUIRE(config_.epsilon > 0.0, "service: epsilon must be positive");
  SENKF_REQUIRE(config_.cache_bandwidth > 0.0,
                "service: cache bandwidth must be positive");
  SENKF_REQUIRE(config_.alloc_overhead_s >= 0.0,
                "service: allocation overhead must be non-negative");
  SENKF_REQUIRE(config_.fair_aging_rate >= 0.0,
                "service: fair-share aging rate must be non-negative");
  for (const auto& [tenant, weight] : config_.tenant_weights) {
    SENKF_REQUIRE(weight > 0.0, "service: tenant weights must be positive");
  }
}

ServiceResult Scheduler::run(const std::vector<JobSpec>& trace) {
  // Liveops arming (no-op unless SENKF_HTTP / SENKF_PROFILE /
  // SENKF_WATCHDOG set).  Each run owns the live job table: policy
  // sweeps reuse the process, and /jobs should show the current sweep.
  telemetry::liveops::ensure_liveops_started();
  telemetry::liveops::JobTable::global().clear();
  const telemetry::liveops::ProfileContextScope profile_ctx("service");
  for (const JobSpec& spec : trace) {
    SENKF_REQUIRE(spec.arrival_s >= 0.0,
                  "service: job arrivals must be non-negative");
    SENKF_REQUIRE(!spec.tenant.empty(), "service: jobs need a tenant");
    SENKF_REQUIRE(spec.cycles > 0, "service: jobs need at least one cycle");
  }
  ServiceState state(config_);
  state.records.resize(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    state.records[i].spec = trace[i];
  }
  // Trace order breaks simultaneous-arrival ties (insertion-order event
  // queue), so a trace replays identically every time.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    state.sim.spawn(arrive(state, i));
  }
  state.sim.run();
  return finish(state);
}

ServiceResult run_service(const ServiceConfig& config,
                          const std::vector<JobSpec>& trace) {
  Scheduler scheduler(config);
  return scheduler.run(trace);
}

void publish_report(const ServiceResult& result,
                    const ServiceConfig& config) {
  telemetry::RunReport report;
  report.kind = "service";
  report.valid = true;

  auto add_config = [&report](const std::string& key, const std::string& v) {
    report.config.emplace_back(key, v);
  };
  auto num = [](double v) {
    std::ostringstream out;
    out << v;
    return out.str();
  };
  add_config("policy", policy_name(result.policy));
  add_config("total_ranks", std::to_string(config.total_ranks));
  add_config("io_slot_budget", std::to_string(config.io_slot_budget));
  add_config("epsilon", num(config.epsilon));
  add_config("reuse", config.reuse_enabled ? "1" : "0");
  add_config("jobs", std::to_string(result.records.size()));
  add_config("tenants", std::to_string(result.tenants.size()));

  report.phases["queue_wait"] = 0.0;
  report.phases["run"] = 0.0;
  for (const JobRecord& rec : result.records) {
    if (!rec.admitted) continue;
    report.phases["queue_wait"] += rec.queue_wait_s;
    report.phases["run"] += rec.run_s;
  }

  report.jobs.reserve(result.records.size());
  for (const JobRecord& rec : result.records) {
    telemetry::JobSlo slo;
    slo.id = rec.spec.id;
    slo.tenant = rec.spec.tenant;
    slo.admitted = rec.admitted;
    slo.reject_reason = rec.reject_reason;
    slo.arrival_s = rec.spec.arrival_s;
    slo.start_s = rec.start_s;
    slo.end_s = rec.end_s;
    slo.queue_wait_s = rec.queue_wait_s;
    slo.run_s = rec.run_s;
    slo.predicted_s = rec.predicted_s;
    slo.deadline_s = rec.spec.deadline_s;
    slo.deadline_met = rec.deadline_met;
    slo.ranks = rec.ranks_used;
    slo.rank_lo = rec.rank_lo;
    slo.io_slots = rec.io_slots;
    slo.cache_hits = rec.cache_hits;
    slo.cache_saved_bytes = rec.cache_saved_bytes;
    report.jobs.push_back(std::move(slo));
  }

  telemetry::Registry& registry = telemetry::Registry::global();
  registry.counter("service.jobs.admitted").add(result.admitted);
  registry.counter("service.jobs.rejected").add(result.rejected);
  registry.counter("service.deadlines.met").add(result.deadlines_met);
  registry.counter("service.deadlines.missed").add(result.deadlines_missed);
  registry.counter("service.cache.hits").add(result.cache_hits);
  registry.counter("service.pool.hits").add(result.pool_hits);
  registry.counter("service.pool.misses").add(result.pool_misses);

  telemetry::set_run_report(std::move(report));
}

}  // namespace senkf::service
