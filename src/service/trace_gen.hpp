// Synthetic multi-tenant job traces for the service plane
// (DESIGN.md §14).
//
// The generator produces the heavy, bursty workload the svc_job_trace
// bench and the policy tests replay: arrivals cluster into bursts, one
// tenant is a burst-heavy hog submitting mostly large jobs, the other
// tenants submit mostly small interactive jobs with tight deadlines.
// That mix is what separates the policies: FIFO head-of-line blocks the
// small tight-deadline jobs behind the hog's large ones, deadline-aware
// (EDF) runs them first, and fair-share bounds how long the hog can
// monopolize the disk-concurrency slots.
//
// Deadlines are calibrated against tuning::predict_runtime for each size
// class on the given machine, so "tight" and "loose" track the machine
// model instead of hard-coded seconds.  Deterministic: one seed, one
// trace, on every platform (support/rng.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "service/job.hpp"
#include "vcluster/machine.hpp"

namespace senkf::service {

struct TraceConfig {
  std::uint64_t jobs = 120;
  std::uint64_t tenants = 6;
  /// Arrivals land in [0, horizon_s).
  double horizon_s = 600.0;
  std::uint64_t seed = 42;
  /// Rank budgets are sized against this cluster (jobs request at most
  /// half of it, so ≥ 3 of them run concurrently on disjoint sets).
  std::uint64_t cluster_ranks = 384;
};

/// Generates `config.jobs` specs sorted by arrival time (ties keep
/// generation order).  Tenant "tenant-0" is the burst-heavy hog.
std::vector<JobSpec> generate_trace(const TraceConfig& config,
                                    const vcluster::MachineConfig& machine);

}  // namespace senkf::service
