#include "service/reuse.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace senkf::service {

BarReadCache::BarReadCache(double capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  SENKF_REQUIRE(capacity_bytes >= 0.0,
                "BarReadCache: capacity must be non-negative");
}

std::string BarReadCache::key_of(const JobSpec& spec) {
  // Tenant + file range + grid shape: anything that changes what the
  // cached bytes *are* changes the key, so a stale hit is impossible.
  return spec.tenant + "/" + std::to_string(spec.file_base) + "+" +
         std::to_string(spec.workload.members) + "/" +
         std::to_string(spec.workload.nx) + "x" +
         std::to_string(spec.workload.ny) + "x" +
         std::to_string(spec.workload.levels);
}

bool BarReadCache::lookup(const JobSpec& spec) {
  const std::string key = key_of(spec);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key != key) continue;
    entries_.splice(entries_.begin(), entries_, it);  // refresh LRU
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

void BarReadCache::insert(const JobSpec& spec) {
  const std::string key = key_of(spec);
  const double bytes = static_cast<double>(spec.workload.members) *
                       spec.workload.member_bytes();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key != key) continue;
    entries_.splice(entries_.begin(), entries_, it);
    return;  // already resident
  }
  if (bytes > capacity_bytes_) return;  // would evict everything for nothing
  while (!entries_.empty() && resident_bytes_ + bytes > capacity_bytes_) {
    resident_bytes_ -= entries_.back().bytes;
    entries_.pop_back();
    ++stats_.evictions;
  }
  if (resident_bytes_ + bytes > capacity_bytes_) return;
  entries_.push_front(Entry{key, bytes});
  resident_bytes_ += bytes;
  ++stats_.insertions;
}

SharedBufferPool::JobBuffers SharedBufferPool::acquire(std::uint64_t count,
                                                       std::size_t bytes) {
  const std::size_t clamped = std::min(bytes, kMaxModelBytes);
  JobBuffers out;
  out.buffers.reserve(count);
  const parcomm::PayloadPool::Stats before = pool_.stats();
  for (std::uint64_t i = 0; i < count; ++i) {
    out.buffers.push_back(pool_.acquire(clamped));
  }
  const parcomm::PayloadPool::Stats after = pool_.stats();
  out.hits = after.hits - before.hits;
  out.misses = after.misses - before.misses;
  return out;
}

void SharedBufferPool::release(JobBuffers&& buffers) {
  for (parcomm::Payload& payload : buffers.buffers) {
    pool_.release(std::move(payload));
  }
  buffers.buffers.clear();
}

}  // namespace senkf::service
