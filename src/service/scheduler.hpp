// Multi-tenant assimilation-as-a-service scheduler (DESIGN.md §14).
//
// One Scheduler::run replays a whole job trace against a shared simulated
// vcluster + PFS: jobs arrive on the service clock, are auto-tuned
// (Algorithms 1–2) within their rank budget, admission-controlled against
// the cluster size and the disk-concurrency slot budget, queued under a
// pluggable policy, and executed concurrently on disjoint rank intervals
// — every running job's bar reads queue on the same simulated OSTs, so
// cross-job disk contention is the real thing the DES already models.
//
// Cross-job reuse: back-to-back cycles of the same tenant serve their
// ensemble bars from the BarReadCache instead of the PFS, and scatter
// buffers recycle through one SharedBufferPool across jobs.
//
// Accounting: every job leaves a JobRecord (queue wait, run time,
// deadline flag, carved rank interval, reuse counters); per-tenant disk
// consumption comes from pfs::Pfs::tenant_stats.  publish_report threads
// it all into run-report schema v3.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pfs/pfs.hpp"
#include "service/job.hpp"
#include "service/policy.hpp"

namespace senkf::service {

struct ServiceConfig {
  /// The shared machine: PFS + network models and compute constants.
  vcluster::MachineConfig machine;
  /// Ranks of the shared vcluster that jobs carve disjoint intervals of.
  std::uint64_t total_ranks = 384;
  Policy policy = Policy::kFifo;
  /// Earnings-rate cutoff for the per-job auto-tuning (Algorithm 2).
  double epsilon = 0.05;
  /// Admission budget on concurrent disk-concurrency slots: the sum of
  /// running jobs' n_cg · n_sdy may not exceed it.  0 derives the PFS
  /// stream capacity (ost_count × max_streams).
  std::uint64_t io_slot_budget = 0;
  /// Master switch for the bar-read cache + shared buffer pool.
  bool reuse_enabled = true;
  double cache_capacity_bytes = 4e9;
  /// Bytes/second charged for bar "reads" served from the cache.
  double cache_bandwidth = 8e9;
  /// Modelled allocation cost charged per pooled-buffer miss.
  double alloc_overhead_s = 50e-6;
  /// Fair-share weights; tenants absent here weigh 1.  A tenant of
  /// weight 2 may consume twice the disk-slot-seconds before yielding.
  std::map<std::string, double> tenant_weights;
  /// Fair-share aging: slot-seconds of billing a queued job forgives per
  /// second of waiting.  Bounds starvation — a heavily billed tenant's
  /// job outranks fresher arrivals after waiting (billing gap) / rate
  /// seconds.  0 disables aging (strict least-billed-first).
  double fair_aging_rate = 3.0;
};

/// Aggregated per-tenant SLO view.
struct TenantSummary {
  std::uint64_t jobs = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  double run_s = 0.0;
  double queue_wait_s = 0.0;
  double max_wait_s = 0.0;
  double p99_latency_s = 0.0;
  /// Weighted disk-slot-seconds billed (the fair-share ordering key).
  double billed_slot_seconds = 0.0;
};

struct ServiceResult {
  Policy policy = Policy::kFifo;
  /// One record per trace entry, in trace order.
  std::vector<JobRecord> records;
  double makespan_s = 0.0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadlines_met = 0;
  std::uint64_t deadlines_missed = 0;
  /// Peak number of simultaneously running jobs (disjoint rank sets).
  std::uint64_t peak_concurrent_jobs = 0;
  double jobs_per_hour = 0.0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  /// max over tenants of their p99 latency — what fair-share bounds.
  double worst_tenant_p99_s = 0.0;
  std::map<std::string, TenantSummary> tenants;
  /// Per-tenant disk accounting from the shared PFS (read_as billing).
  std::map<std::string, pfs::TenantIoStats> tenant_io;
  // Cross-job reuse totals.
  std::uint64_t cache_hits = 0;
  double cache_saved_bytes = 0.0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
};

class Scheduler {
 public:
  explicit Scheduler(ServiceConfig config);

  /// Replays `trace` to completion and returns the full accounting.
  /// Deterministic: the same config + trace gives identical records.
  ServiceResult run(const std::vector<JobSpec>& trace);

  const ServiceConfig& config() const { return config_; }

 private:
  ServiceConfig config_;
};

/// Convenience one-shot.
ServiceResult run_service(const ServiceConfig& config,
                          const std::vector<JobSpec>& trace);

/// Publishes `result` as the process-global run report (kind "service",
/// schema v3 per-job section) and mirrors the headline numbers into the
/// metrics registry (service.* counters).
void publish_report(const ServiceResult& result, const ServiceConfig& config);

}  // namespace senkf::service
