#include "service/trace_gen.hpp"

#include <algorithm>
#include <string>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "tuning/auto_tune.hpp"

namespace senkf::service {

namespace {

/// One of the three job size classes the trace mixes.
struct SizeClass {
  vcluster::SimWorkload workload;
  std::uint64_t ranks = 0;   ///< rank budget handed to the tuner
  std::uint64_t cycles = 1;
  /// Deadline multipliers on the predicted runtime: tight classes get
  /// deadlines that only survive a short queue wait.
  double deadline_lo = 0.0;
  double deadline_hi = 0.0;
  double predicted_s = 0.0;  ///< calibrated below
};

std::vector<SizeClass> make_classes(const TraceConfig& config,
                                    const vcluster::MachineConfig& machine) {
  auto workload = [](std::uint64_t nx, std::uint64_t ny,
                     std::uint64_t members) {
    vcluster::SimWorkload w;
    w.nx = nx;
    w.ny = ny;
    w.members = members;
    return w;
  };
  const std::uint64_t half = std::max<std::uint64_t>(config.cluster_ranks / 2,
                                                     8);
  std::vector<SizeClass> classes{
      // flash: the hog's wide-but-short nowcasts — a big rank/slot
      // footprint for a few seconds, with a deadline only a short queue
      // wait survives.  Billing-heavy (slots × everything at once), so
      // fair-share throttles the tenant that floods them.
      {workload(720, 360, 40), std::min<std::uint64_t>(144, half), 1,
       1.5, 2.5, 0.0},
      // obs-window: narrow short single-cycle analyses that must land
      // inside an observation window.  Under strict FIFO they starve
      // behind a blocked wide head even when their few ranks are free;
      // backfilling policies rescue them.
      {workload(360, 180, 20), std::min<std::uint64_t>(16, half), 1,
       2.0, 3.0, 0.0},
      // reanalysis: mid-size multi-cycle sweeps, loose deadline.
      {workload(720, 360, 40), std::min<std::uint64_t>(48, half), 3,
       8.0, 12.0, 0.0},
  };
  for (SizeClass& c : classes) {
    const tuning::CostModel model(
        tuning::params_from(machine, c.workload));
    const tuning::AutoTuneResult tuned =
        tuning::auto_tune(model, c.ranks, /*epsilon=*/0.05);
    c.predicted_s = tuning::predict_runtime(model, tuned.params, c.cycles);
  }
  return classes;
}

}  // namespace

std::vector<JobSpec> generate_trace(const TraceConfig& config,
                                    const vcluster::MachineConfig& machine) {
  SENKF_REQUIRE(config.jobs > 0, "trace: need at least one job");
  SENKF_REQUIRE(config.tenants >= 2, "trace: need at least two tenants");
  SENKF_REQUIRE(config.horizon_s > 0.0, "trace: horizon must be positive");

  const std::vector<SizeClass> classes = make_classes(config, machine);
  Rng rng(config.seed);

  // Arrivals cluster into bursts: each burst opens a short admission
  // window, so queues actually build (a uniform trickle would never
  // separate the policies).
  const std::uint64_t bursts =
      std::max<std::uint64_t>(1, config.jobs / 12);
  const double burst_spacing = config.horizon_s / static_cast<double>(bursts);
  const double burst_width = burst_spacing / 4.0;

  std::vector<JobSpec> trace;
  trace.reserve(config.jobs);
  for (std::uint64_t j = 0; j < config.jobs; ++j) {
    JobSpec spec;
    spec.id = j;

    // tenant-0 hogs ~half of the trace; the rest spreads evenly.
    const bool hog = rng.uniform() < 0.5;
    const std::uint64_t tenant_index =
        hog ? 0 : 1 + rng.uniform_index(config.tenants - 1);
    spec.tenant = "tenant-" + std::to_string(tenant_index);

    // The hog floods flash jobs at the head of each burst (the FIFO
    // backlog everyone else's long jobs queue behind); the other tenants
    // run the routine and reanalysis cycles.
    const double roll = rng.uniform();
    std::size_t class_index;
    if (hog) {
      class_index = roll < 0.85 ? 0 : 2;
    } else {
      class_index = roll < 0.6 ? 1 : 2;
    }
    const SizeClass& cls = classes[class_index];
    spec.workload = cls.workload;
    spec.ranks = cls.ranks;
    spec.cycles = cls.cycles;

    const std::uint64_t burst = rng.uniform_index(bursts);
    // Hog jobs cluster at the burst head, victims trickle in behind.
    spec.arrival_s =
        static_cast<double>(burst) * burst_spacing +
        (hog ? rng.uniform(0.0, burst_width / 4.0)
             : rng.uniform(burst_width / 4.0, burst_width));
    spec.deadline_s =
        cls.predicted_s * rng.uniform(cls.deadline_lo, cls.deadline_hi);
    spec.obs_density = rng.uniform(0.8, 1.2);
    // Distinct per-(tenant, class) file ranges: jobs of the same tenant
    // and class re-read the same ensemble (cache reuse is real), while
    // different tenants land on different OST placements.
    spec.file_base = tenant_index * 4096 + class_index * 1024;
    trace.push_back(std::move(spec));
  }

  std::stable_sort(trace.begin(), trace.end(),
                   [](const JobSpec& a, const JobSpec& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  return trace;
}

}  // namespace senkf::service
