// Cross-job reuse (DESIGN.md §14): what back-to-back cycles of the same
// tenant can share.
//
//  * BarReadCache — an LRU over whole cached ensembles.  A job whose
//    (tenant, file range, grid) signature matches a cached entry serves
//    its bar reads from memory at `cache_bandwidth` instead of queueing
//    on the shared PFS — the service-plane analogue of S-EnKF keeping the
//    background ensemble resident between cycles.  Capacity-bounded with
//    LRU eviction; any write to a tenant's ensemble (a new job with a
//    different signature) simply misses and repopulates.
//
//  * SharedBufferPool — the real parcomm::PayloadPool shared across jobs:
//    each job acquires its per-(row, group) scatter buffers at start and
//    releases them at completion, so a busy service recycles one warm set
//    of buffers instead of re-allocating per job.  Buffer capacities are
//    clamped (the DES does not need the payload bytes, only the reuse
//    behaviour), and the modelled allocation overhead is charged on
//    misses only.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "parcomm/payload_pool.hpp"
#include "service/job.hpp"

namespace senkf::service {

class BarReadCache {
 public:
  explicit BarReadCache(double capacity_bytes);

  /// True when `spec`'s ensemble is cached (and refreshes its LRU slot).
  bool lookup(const JobSpec& spec);

  /// Records `spec`'s ensemble as cached, evicting least-recently-used
  /// ensembles until the new total fits.  An ensemble larger than the
  /// whole cache is not inserted.
  void insert(const JobSpec& spec);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  const Stats& stats() const { return stats_; }
  double resident_bytes() const { return resident_bytes_; }

 private:
  struct Entry {
    std::string key;
    double bytes = 0.0;
  };

  static std::string key_of(const JobSpec& spec);

  double capacity_bytes_;
  double resident_bytes_ = 0.0;
  /// Most-recently-used first.
  std::list<Entry> entries_;
  Stats stats_;
};

class SharedBufferPool {
 public:
  /// Capacity clamp for pooled buffers: reuse bookkeeping does not need
  /// multi-megabyte allocations to be faithful.
  static constexpr std::size_t kMaxModelBytes = std::size_t{1} << 20;

  SharedBufferPool() : pool_(/*enabled=*/true) {}

  /// One job's working set of scatter buffers, held for its duration.
  struct JobBuffers {
    std::vector<parcomm::Payload> buffers;
    std::uint64_t hits = 0;    ///< recycled from a previous job
    std::uint64_t misses = 0;  ///< freshly allocated
  };

  /// Takes `count` buffers of (clamped) `bytes` capacity for one job.
  JobBuffers acquire(std::uint64_t count, std::size_t bytes);

  /// Returns the job's buffers so the next job can recycle them.
  void release(JobBuffers&& buffers);

  parcomm::PayloadPool::Stats stats() const { return pool_.stats(); }

 private:
  parcomm::PayloadPool pool_;
};

}  // namespace senkf::service
