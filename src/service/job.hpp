// Job descriptions for the assimilation service (DESIGN.md §14).
//
// A JobSpec is one tenant's request: "assimilate this workload (grid,
// ensemble, observation density) within `ranks` processors, `deadline_s`
// seconds after I submit it".  The scheduler tunes each admitted job with
// the paper's Algorithms 1–2 against the shared machine model, carves a
// disjoint rank interval for it, and executes it on the shared simulated
// PFS; the JobRecord is the full per-job SLO accounting that feeds run
// report schema v3.
#pragma once

#include <cstdint>
#include <string>

#include "vcluster/machine.hpp"
#include "vcluster/workflows.hpp"

namespace senkf::service {

struct JobSpec {
  std::uint64_t id = 0;
  std::string tenant;
  /// Submission time on the service clock (simulated seconds).
  double arrival_s = 0.0;
  /// Deadline relative to arrival.  > 0 is a real deadline; == 0 means
  /// "due immediately" (admitted, scheduled with top urgency under the
  /// deadline-aware policy, and inevitably recorded as missed); < 0 is
  /// rejected at admission.
  double deadline_s = 0.0;
  /// Processor budget the tuner may spend on this job (upper bound on the
  /// carved rank set).
  std::uint64_t ranks = 0;
  /// Back-to-back assimilation cycles; cycles after the first reuse the
  /// job's own cached ensemble reads.
  std::uint64_t cycles = 1;
  /// Grid size, ensemble N, halos — the per-tenant analysis workload.
  vcluster::SimWorkload workload;
  /// Observation-network density relative to the calibrated baseline:
  /// scales the local-analysis cost per grid point (a denser network
  /// means more observations per local domain).
  double obs_density = 1.0;
  /// First ensemble-member file index of this tenant's ensemble on the
  /// shared PFS (members occupy [file_base, file_base + workload.members)).
  /// Distinct tenants use distinct ranges, so OST placement — and hence
  /// disk contention — is tenant-dependent, as on a real file system.
  std::uint64_t file_base = 0;
};

/// Per-job outcome and SLO accounting.
struct JobRecord {
  JobSpec spec;
  bool admitted = false;
  std::string reject_reason;  ///< set iff !admitted
  double start_s = -1.0;
  double end_s = -1.0;
  double queue_wait_s = 0.0;
  double run_s = 0.0;
  double predicted_s = 0.0;  ///< tuning::predict_runtime at admission
  bool deadline_met = false;
  /// The carved rank interval [rank_lo, rank_lo + ranks_used) — disjoint
  /// from every concurrently running job's interval.
  std::uint64_t rank_lo = 0;
  std::uint64_t ranks_used = 0;
  /// Disk-concurrency slots (n_cg · n_sdy) held for the job's duration.
  std::uint64_t io_slots = 0;
  /// Tuned configuration the job ran with.
  vcluster::SenkfParams params;
  // Cross-job reuse accounting.
  std::uint64_t cache_hits = 0;      ///< cycles served from cached bars
  double cache_saved_bytes = 0.0;    ///< PFS bytes the cache absorbed
  std::uint64_t pool_hits = 0;       ///< payload buffers recycled from pool
  std::uint64_t pool_misses = 0;     ///< payload buffers freshly allocated

  /// Queue wait + run time (the per-job latency the bench quantiles).
  double latency_s() const { return end_s - spec.arrival_s; }
};

}  // namespace senkf::service
