// Message payload serialization.
//
// parcomm messages carry opaque byte payloads; Packer/Unpacker give a
// type-safe, symmetric way to (de)serialize PODs and vectors into them.
// Unpacking past the end or reading a size prefix that disagrees with the
// remaining bytes throws ProtocolError — corrupt framing never turns into
// silent garbage.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <vector>

#include "support/error.hpp"

namespace senkf::parcomm {

using Payload = std::vector<std::byte>;

class Packer {
 public:
  template <typename T>
  Packer& put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::put requires a trivially copyable type");
    const auto offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
    return *this;
  }

  template <typename T>
  Packer& put_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::put_vector requires trivially copyable elements");
    put<std::uint64_t>(values.size());
    const auto offset = bytes_.size();
    bytes_.resize(offset + values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(bytes_.data() + offset, values.data(),
                  values.size() * sizeof(T));
    }
    return *this;
  }

  Payload take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  Payload bytes_;
};

class Unpacker {
 public:
  explicit Unpacker(const Payload& payload) : bytes_(payload) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Unpacker::get requires a trivially copyable type");
    require_remaining(sizeof(T), "value");
    T value;
    std::memcpy(&value, bytes_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Unpacker::get_vector requires trivially copyable elements");
    const auto count = get<std::uint64_t>();
    require_remaining(count * sizeof(T), "vector body");
    std::vector<T> values(count);
    if (count > 0) {
      std::memcpy(values.data(), bytes_.data() + cursor_, count * sizeof(T));
    }
    cursor_ += count * sizeof(T);
    return values;
  }

  std::size_t remaining() const { return bytes_.size() - cursor_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  void require_remaining(std::size_t needed, const char* what) const;

  const Payload& bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace senkf::parcomm
