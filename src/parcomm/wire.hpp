// Message payload serialization — the zero-copy message plane.
//
// parcomm messages carry opaque byte payloads; Packer/Unpacker give a
// type-safe, symmetric way to (de)serialize PODs and vectors into them.
// Unpacking past the end or reading a size prefix that disagrees with the
// remaining bytes throws ProtocolError — corrupt framing never turns into
// silent garbage.  A corrupt count prefix is rejected *before* any
// `count * sizeof(T)` arithmetic, so an adversarial prefix can neither
// overflow the bounds check nor drive a huge allocation.
//
// Ownership (DESIGN.md §10): a payload is produced by exactly one Packer,
// sealed into an immutable `SharedPayload` by `take_shared()`, and from
// then on only read.  Fan-out (broadcast, multi-destination sends) pushes
// handles to the one buffer instead of per-rank deep copies; receivers
// read it in place via `Unpacker::view<T>()` and keep it alive by holding
// the handle.  When the last handle drops, the buffer returns to the
// PayloadPool for the next Packer to recycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "support/error.hpp"
#include "telemetry/metrics.hpp"

namespace senkf::parcomm {

using Payload = std::vector<std::byte>;

namespace detail {
/// Counts every time message-payload body bytes are memcpy'd (packed in
/// or copied out).  View-based reads never touch it — the whole point of
/// the zero-copy plane is that this counter stays at ≤1 per block.
telemetry::Counter& payload_copies_counter();
}  // namespace detail

/// Immutable, refcounted handle to a sealed payload.  Copying a
/// SharedPayload copies a pointer, never the bytes; the buffer returns to
/// the PayloadPool when the last handle drops.  A default-constructed
/// handle reads as an empty payload.
class SharedPayload {
 public:
  SharedPayload() = default;

  /// Seals `bytes` (no copy).  The wrapping shared_ptr's deleter releases
  /// the buffer back to the process-wide PayloadPool.
  SharedPayload(Payload&& bytes);  // NOLINT(google-explicit-constructor)

  const Payload& bytes() const;
  const std::byte* data() const { return bytes().data(); }
  std::size_t size() const { return ptr_ == nullptr ? 0 : ptr_->size(); }
  bool empty() const { return size() == 0; }

  /// Diagnostic: number of live handles (0 for the default handle).
  long use_count() const { return ptr_.use_count(); }

 private:
  std::shared_ptr<const Payload> ptr_;
};

class Packer {
 public:
  /// Pre-sizes the buffer for exact-size packing (acquires a recycled
  /// buffer from the PayloadPool when one fits), so a correctly sized
  /// message is built with zero reallocation.
  void reserve(std::size_t bytes);

  std::size_t capacity() const { return bytes_.capacity(); }

  template <typename T>
  Packer& put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::put requires a trivially copyable type");
    const auto offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
    return *this;
  }

  template <typename T>
  Packer& put_vector(const std::vector<T>& values) {
    return put_span(std::span<const T>(values.data(), values.size()));
  }

  /// Count-prefixed span body; the symmetric reader is
  /// `Unpacker::get_vector<T>()` or, zero-copy, `Unpacker::view<T>()`.
  template <typename T>
  Packer& put_span(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::put_span requires trivially copyable elements");
    put<std::uint64_t>(values.size());
    if (!values.empty()) {
      append_raw(values.data(), values.size() * sizeof(T));
      detail::payload_copies_counter().add(1);
    }
    return *this;
  }

  /// Appends room for `count` Ts and returns a writable span over it, so
  /// producers compute results straight into the payload instead of
  /// staging them in a separate buffer first (e.g. the analysis
  /// projection writing target-rect values).  No count prefix is
  /// written and the copy counter is untouched — framing is the
  /// caller's job, exactly as with put_raw.  The span is invalidated by
  /// the next append to this Packer.
  template <typename T>
  std::span<T> put_uninit(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::put_uninit requires trivially copyable elements");
    const auto offset = bytes_.size();
    bytes_.resize(offset + count * sizeof(T));
    return {reinterpret_cast<T*>(bytes_.data() + offset), count};
  }

  /// Raw append without a count prefix — the building block for framed
  /// formats that write their own headers (e.g. multi-block patch
  /// messages packing one row slice at a time).  Does not touch the
  /// copy counter; framed packers count once per logical block.
  template <typename T>
  Packer& put_raw(const T* values, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::put_raw requires trivially copyable elements");
    if (count > 0) append_raw(values, count * sizeof(T));
    return *this;
  }

  Payload take() { return std::move(bytes_); }

  /// Seals the buffer into an immutable shared handle (no copy).
  SharedPayload take_shared() { return SharedPayload(std::move(bytes_)); }

  std::size_t size() const { return bytes_.size(); }

 private:
  void append_raw(const void* data, std::size_t bytes) {
    const auto offset = bytes_.size();
    bytes_.resize(offset + bytes);
    std::memcpy(bytes_.data() + offset, data, bytes);
  }

  Payload bytes_;
};

class Unpacker {
 public:
  /// Non-owning: the payload must outlive the Unpacker and any views.
  explicit Unpacker(const Payload& payload) : bytes_(&payload) {}

  /// Owning: retains the handle, so the payload — and views into it —
  /// stay valid for as long as the caller also holds the handle.
  explicit Unpacker(const SharedPayload& payload)
      : owner_(payload), bytes_(&owner_.bytes()) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Unpacker::get requires a trivially copyable type");
    require_remaining(sizeof(T), "value");
    T value;
    std::memcpy(&value, bytes_->data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Unpacker::get_vector requires trivially copyable elements");
    const std::uint64_t count = checked_count(sizeof(T), "vector body");
    std::vector<T> values(count);
    if (count > 0) {
      std::memcpy(values.data(), bytes_->data() + cursor_, count * sizeof(T));
      detail::payload_copies_counter().add(1);
    }
    cursor_ += count * sizeof(T);
    return values;
  }

  /// Zero-copy read of a count-prefixed body written by put_vector /
  /// put_span: returns a span aliasing the payload bytes in place.  The
  /// span is valid only while the payload lives — hold the SharedPayload
  /// (or construct the Unpacker from one and keep it) across the span's
  /// lifetime.  The body must start at an alignof(T) boundary; every
  /// framing in this library is a multiple of 8 bytes, so doubles and
  /// u64s always qualify.
  template <typename T>
  std::span<const T> view() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Unpacker::view requires trivially copyable elements");
    const std::uint64_t count = checked_count(sizeof(T), "vector body");
    if (count == 0) return {};
    const std::byte* body = bytes_->data() + cursor_;
    require_aligned(body, alignof(T));
    cursor_ += count * sizeof(T);
    // The bytes were memcpy'd from T objects by the Packer, so reading
    // them through T is the inverse of that representation copy.
    return {reinterpret_cast<const T*>(body), count};
  }

  std::size_t remaining() const { return bytes_->size() - cursor_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  void require_remaining(std::size_t needed, const char* what) const;
  void require_aligned(const std::byte* at, std::size_t alignment) const;

  /// Reads a u64 count prefix and validates it against the remaining
  /// bytes without ever forming `count * elem_size` first — the check
  /// `count <= remaining() / elem_size` cannot overflow, so a corrupt
  /// prefix throws instead of slipping past the bounds check.
  std::uint64_t checked_count(std::size_t elem_size, const char* what);

  SharedPayload owner_;  ///< empty for the non-owning constructor
  const Payload* bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace senkf::parcomm
