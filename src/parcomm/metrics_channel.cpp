#include "parcomm/metrics_channel.hpp"

#include <optional>
#include <utility>

namespace senkf::parcomm {

namespace {

/// recv that honours the cancellation predicate: poll-sliced when a
/// predicate is installed, plain blocking recv otherwise.  nullopt means
/// the caller should give up on this partner.
std::optional<Envelope> recv_cancellable(Communicator& world, int source,
                                         int tag,
                                         const std::function<bool()>& cancelled,
                                         std::chrono::milliseconds poll) {
  if (!cancelled) return world.recv(source, tag);
  while (true) {
    std::optional<Envelope> envelope = world.recv_for(source, tag, poll);
    if (envelope.has_value()) return envelope;
    if (cancelled()) return std::nullopt;
  }
}

}  // namespace

telemetry::MetricsSnapshot reduce_snapshots(
    Communicator& world, int tag, telemetry::MetricsSnapshot mine,
    const std::function<bool()>& cancelled, std::chrono::milliseconds poll) {
  const int rank = world.rank();
  const int size = world.size();
  // Same binomial schedule as Communicator::allreduce's reduce leg: in
  // round `mask` the ranks with that bit set send their partial to
  // rank - mask and drop out; the others absorb rank + mask's subtree.
  for (int mask = 1; mask < size; mask <<= 1) {
    if ((rank & mask) != 0) {
      world.send(rank - mask, tag, Payload(mine.encode()));
      break;
    }
    if (rank + mask < size) {
      std::optional<Envelope> envelope =
          recv_cancellable(world, rank + mask, tag, cancelled, poll);
      if (!envelope.has_value()) continue;  // peer unwound; degrade
      const Payload& bytes = envelope->payload.bytes();
      mine.merge(telemetry::MetricsSnapshot::decode(bytes.data(), bytes.size()));
    }
  }
  return mine;
}

}  // namespace senkf::parcomm
