#include "parcomm/payload_pool.hpp"

#include <cstdlib>
#include <cstring>

namespace senkf::parcomm {

namespace {

struct PoolMetrics {
  telemetry::Counter& hit;
  telemetry::Counter& miss;
  static PoolMetrics& get() {
    auto& registry = telemetry::Registry::global();
    static PoolMetrics m{
        registry.counter("parcomm.pool.hit"),
        registry.counter("parcomm.pool.miss"),
    };
    return m;
  }
};

/// log2 of the smallest power of two >= bytes, clamped to the pooled
/// range; buckets_[i] holds buffers with capacity >= kMinBytes << i.
std::size_t bucket_count() {
  std::size_t n = 0;
  for (std::size_t c = PayloadPool::kMinBytes; c < PayloadPool::kMaxBytes;
       c <<= 1) {
    ++n;
  }
  return n + 1;
}

}  // namespace

bool pool_enabled_from_spec(const char* spec) {
  if (spec == nullptr) return true;
  return !(std::strcmp(spec, "off") == 0 || std::strcmp(spec, "0") == 0 ||
           std::strcmp(spec, "false") == 0);
}

PayloadPool& PayloadPool::global() {
  static PayloadPool pool(pool_enabled_from_spec(std::getenv("SENKF_COMM_POOL")));
  return pool;
}

std::size_t PayloadPool::bucket_of(std::size_t bytes) {
  std::size_t index = 0;
  std::size_t capacity = kMinBytes;
  while (capacity < bytes) {
    capacity <<= 1;
    ++index;
  }
  return index;
}

Payload PayloadPool::acquire(std::size_t bytes) {
  if (enabled_ && bytes <= kMaxBytes) {
    const std::size_t index = bucket_of(bytes);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (buckets_.empty()) buckets_.resize(bucket_count());
      auto& bucket = buckets_[index];
      if (!bucket.empty()) {
        Payload recycled = std::move(bucket.back());
        bucket.pop_back();
        hits_.fetch_add(1, std::memory_order_relaxed);
        hit_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        PoolMetrics::get().hit.add(1);
        return recycled;  // cleared on release; capacity >= kMinBytes << index
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    PoolMetrics::get().miss.add(1);
    Payload fresh;
    fresh.reserve(kMinBytes << index);
    return fresh;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  PoolMetrics::get().miss.add(1);
  Payload fresh;
  fresh.reserve(bytes);
  return fresh;
}

void PayloadPool::release(Payload&& buffer) {
  const std::size_t capacity = buffer.capacity();
  if (!enabled_ || capacity < kMinBytes || capacity > kMaxBytes) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Floor bucket: every buffer stored in buckets_[i] must satisfy the
  // capacity >= kMinBytes << i contract acquire() hands out.
  std::size_t index = bucket_of(capacity);
  if ((kMinBytes << index) > capacity) --index;
  buffer.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (buckets_.empty()) buckets_.resize(bucket_count());
    auto& bucket = buckets_[index];
    if (bucket.size() < kMaxPerBucket) {
      bucket.push_back(std::move(buffer));
      returned_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

PayloadPool::Stats PayloadPool::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.returned = returned_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.hit_bytes = hit_bytes_.load(std::memory_order_relaxed);
  s.miss_bytes = miss_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace senkf::parcomm
