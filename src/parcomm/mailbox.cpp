#include "parcomm/mailbox.hpp"

#include <string>

namespace senkf::parcomm {

void Mailbox::push(Envelope envelope) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(envelope));
  }
  cv_.notify_all();
}

std::optional<Envelope> Mailbox::take_matching_locked(int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) {
      Envelope envelope = std::move(*it);
      queue_.erase(it);
      return envelope;
    }
  }
  return std::nullopt;
}

Envelope Mailbox::pop(int source, int tag, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (auto envelope = take_matching_locked(source, tag)) {
      return std::move(*envelope);
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (auto envelope = take_matching_locked(source, tag)) {
        return std::move(*envelope);
      }
      throw ProtocolError("Mailbox::pop: timed out waiting for source=" +
                          std::to_string(source) + " tag=" +
                          std::to_string(tag) + " (likely deadlock)");
    }
  }
}

std::optional<Envelope> Mailbox::try_pop(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return take_matching_locked(source, tag);
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace senkf::parcomm
