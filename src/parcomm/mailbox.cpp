#include "parcomm/mailbox.hpp"

#include <string>

#include "telemetry/phase.hpp"

namespace senkf::parcomm {

namespace {

// One registry entry set for every mailbox: per-mailbox metrics would
// explode the namespace, and the queue-depth histogram is what the
// flow-control analysis needs (are senders outrunning the helper thread?).
struct MailboxMetrics {
  telemetry::Counter& messages;
  telemetry::Counter& bytes;
  telemetry::Counter& recv_wait_ns;
  telemetry::Histogram& queue_depth;
  static MailboxMetrics& get() {
    auto& registry = telemetry::Registry::global();
    static MailboxMetrics m{
        registry.counter("parcomm.messages"),
        registry.counter("parcomm.bytes"),
        registry.counter("parcomm.recv_wait_ns"),
        registry.histogram("parcomm.queue_depth",
                           {1, 2, 4, 8, 16, 32, 64, 128, 256}),
    };
    return m;
  }
};

}  // namespace

void Mailbox::push(Envelope envelope) {
  MailboxMetrics& metrics = MailboxMetrics::get();
  metrics.messages.add(1);
  metrics.bytes.add(envelope.payload.size());
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(envelope));
    depth = queue_.size();
  }
  metrics.queue_depth.observe(static_cast<double>(depth));
  cv_.notify_all();
}

std::optional<Envelope> Mailbox::take_matching_locked(int source, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) {
      Envelope envelope = std::move(*it);
      queue_.erase(it);
      return envelope;
    }
  }
  return std::nullopt;
}

Envelope Mailbox::pop(int source, int tag, std::chrono::milliseconds timeout) {
  if (auto envelope =
          pop_until(source, tag, std::chrono::steady_clock::now() + timeout)) {
    return std::move(*envelope);
  }
  throw ProtocolError("Mailbox::pop: timed out waiting for source=" +
                      std::to_string(source) + " tag=" + std::to_string(tag) +
                      " (likely deadlock)");
}

std::optional<Envelope> Mailbox::pop_until(
    int source, int tag, std::chrono::steady_clock::time_point deadline) {
  telemetry::CountedSpan span(telemetry::Category::kWait, "mailbox_wait",
                              MailboxMetrics::get().recv_wait_ns);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto envelope = take_matching_locked(source, tag)) {
      // Flow step: the message passed through this pop on its way to
      // whichever wait it ultimately releases (stage_wait, result_wait).
      span.set_flow(telemetry::FlowDir::kStep, envelope->ctx.span_id);
      return envelope;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last sweep: a push may have landed between the final wake-up
      // and the deadline check.
      auto envelope = take_matching_locked(source, tag);
      if (envelope) {
        span.set_flow(telemetry::FlowDir::kStep, envelope->ctx.span_id);
      }
      return envelope;
    }
  }
}

std::optional<Envelope> Mailbox::pop_for(int source, int tag,
                                         std::chrono::milliseconds timeout) {
  return pop_until(source, tag, std::chrono::steady_clock::now() + timeout);
}

std::optional<Envelope> Mailbox::try_pop(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return take_matching_locked(source, tag);
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace senkf::parcomm
