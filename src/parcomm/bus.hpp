// Shared state behind a Runtime: mailboxes, barriers and split
// coordination, keyed by communicator id.
//
// A Bus is shared (via shared_ptr) by every Communicator spawned from one
// Runtime.  It owns one Mailbox per (communicator, rank), one generation-
// counting barrier per communicator, and the rendezvous state used by
// Communicator::split.  All members are internally synchronized.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "parcomm/mailbox.hpp"

namespace senkf::parcomm {

/// Sense-reversing-style barrier with generation counter, reusable across
/// any number of rounds.
class BarrierState {
 public:
  explicit BarrierState(int participants) : participants_(participants) {}

  void arrive_and_wait();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int participants_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

/// Rendezvous used by Communicator::split: every rank deposits its
/// (color, key), the last arrival computes the outcome for everyone.
struct SplitEntry {
  int color = 0;
  int key = 0;
};

struct SplitOutcome {
  bool member = false;  ///< false when the rank passed kUndefinedColor
  int new_rank = 0;
  int new_size = 0;
};

class SplitState {
 public:
  explicit SplitState(int participants) : participants_(participants) {}

  /// Deposits this rank's entry and blocks until every participant has
  /// arrived; returns this rank's group placement (communicator ids are
  /// assigned afterwards by the group leaders, see Communicator::split).
  SplitOutcome arrive(int rank, SplitEntry entry);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int participants_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::map<int, SplitEntry> entries_;
  std::map<int, SplitOutcome> outcomes_;
};

class Bus {
 public:
  /// Creates the bus and communicator 0 ("world") with `world_size` ranks.
  explicit Bus(int world_size);

  int world_size() const { return world_size_; }

  /// Registers a communicator with `size` ranks; returns its id.
  int create_communicator(int size);

  /// Mailbox of (comm, rank); the communicator must exist.
  Mailbox& mailbox(int comm_id, int rank);

  /// Barrier shared by the ranks of `comm_id`.
  BarrierState& barrier(int comm_id);

  /// Split rendezvous of `comm_id`.
  SplitState& split_state(int comm_id);

 private:
  struct CommState {
    explicit CommState(int size)
        : mailboxes(size), barrier(size), split(size) {
      for (auto& box : mailboxes) box = std::make_unique<Mailbox>();
    }
    std::vector<std::unique_ptr<Mailbox>> mailboxes;
    BarrierState barrier;
    SplitState split;
  };

  CommState& comm(int comm_id);

  mutable std::mutex mutex_;
  int world_size_;
  std::vector<std::unique_ptr<CommState>> comms_;
};

}  // namespace senkf::parcomm
