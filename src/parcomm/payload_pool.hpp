// Thread-safe, size-bucketed recycling pool for message payload buffers.
//
// The message plane allocates one buffer per message; at block-message
// rates that is the allocator on the hot path.  The pool keeps released
// buffers in power-of-two capacity buckets so a Packer's `reserve()`
// reuses a previous message's allocation instead of growing a fresh
// vector.  Release is wired into SharedPayload's deleter: when the last
// handle to a sealed payload drops (sender and every receiver done), the
// buffer comes back here.
//
// Kill switch: `SENKF_COMM_POOL=off` (or `0` / `false`) makes the
// process-wide pool degrade to plain allocation — acquire mints fresh
// buffers, release drops them — for A/B runs and allocator-tool sessions
// where recycling would hide leaks.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "parcomm/wire.hpp"

namespace senkf::parcomm {

/// Parses a SENKF_COMM_POOL value; null/empty/anything else means on.
bool pool_enabled_from_spec(const char* spec);

class PayloadPool {
 public:
  /// Smallest / largest capacities worth recycling; outside this range
  /// acquire and release degrade to plain allocation.
  static constexpr std::size_t kMinBytes = 256;
  static constexpr std::size_t kMaxBytes = std::size_t{64} << 20;
  /// Per-bucket retention cap: beyond it released buffers are freed, so
  /// a burst can never pin more than ~2× its peak footprint.
  static constexpr std::size_t kMaxPerBucket = 64;

  explicit PayloadPool(bool enabled) : enabled_(enabled) {}

  /// The process-wide pool every Packer/SharedPayload uses; enabled
  /// unless SENKF_COMM_POOL says off (read once at first use).
  static PayloadPool& global();

  /// A cleared buffer with capacity >= `bytes` — recycled when a bucket
  /// has one (hit), freshly reserved otherwise (miss).
  Payload acquire(std::size_t bytes);

  /// Returns a buffer for reuse; drops it when the pool is disabled, the
  /// capacity is out of range, or the bucket is full.
  void release(Payload&& buffer);

  bool enabled() const { return enabled_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t returned = 0;
    std::uint64_t dropped = 0;
    /// Requested capacity served from recycled buffers vs freshly
    /// reserved — the byte-level view of how much allocation the pool
    /// absorbed (the service plane reports it per job batch).
    std::uint64_t hit_bytes = 0;
    std::uint64_t miss_bytes = 0;
  };
  Stats stats() const;

 private:
  static std::size_t bucket_of(std::size_t bytes);

  const bool enabled_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> returned_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> hit_bytes_{0};
  std::atomic<std::uint64_t> miss_bytes_{0};
  mutable std::mutex mutex_;
  std::vector<std::vector<Payload>> buckets_;
};

}  // namespace senkf::parcomm
