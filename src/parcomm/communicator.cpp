#include "parcomm/communicator.hpp"

#include <algorithm>

#include "telemetry/phase.hpp"

namespace senkf::parcomm {

namespace {
telemetry::Counter& send_ns_counter() {
  static telemetry::Counter& counter =
      telemetry::Registry::global().counter("parcomm.send_ns");
  return counter;
}
telemetry::Counter& bytes_sent_counter() {
  static telemetry::Counter& counter =
      telemetry::Registry::global().counter("parcomm.bytes_sent");
  return counter;
}
}  // namespace

Envelope Request::wait() {
  if (done_ || box_ == nullptr) return std::move(result_);
  result_ = box_->pop(source_, tag_);
  done_ = true;
  return std::move(result_);
}

bool Request::test() {
  if (done_ || box_ == nullptr) return true;
  if (auto envelope = box_->try_pop(source_, tag_)) {
    result_ = std::move(*envelope);
    done_ = true;
    return true;
  }
  return false;
}

Communicator::Communicator(std::shared_ptr<Bus> bus, int comm_id, int rank,
                           int size)
    : bus_(std::move(bus)), comm_id_(comm_id), rank_(rank), size_(size) {
  SENKF_REQUIRE(bus_ != nullptr, "Communicator: bus must not be null");
  SENKF_REQUIRE(rank >= 0 && rank < size, "Communicator: rank out of range");
}

Mailbox& Communicator::my_mailbox() { return bus_->mailbox(comm_id_, rank_); }

Mailbox& Communicator::mailbox_of(int rank) {
  SENKF_REQUIRE(rank >= 0 && rank < size_,
                "Communicator: destination rank out of range");
  return bus_->mailbox(comm_id_, rank);
}

void Communicator::post(int dest, int tag, SharedPayload payload) {
  Envelope envelope;
  envelope.source = rank_;
  envelope.tag = tag;
  envelope.payload = std::move(payload);
  bytes_sent_counter().add(envelope.payload.size());
  if (telemetry::tracing_enabled()) {
    // World rank of the sending thread, not the comm-local rank_: split
    // communicators renumber ranks, but trace attribution (pid rows, the
    // critical-path table) is keyed by world rank throughout.
    envelope.ctx.origin_rank = telemetry::thread_rank();
    envelope.ctx.span_id = telemetry::alloc_flow_id();
    envelope.ctx.send_ns = telemetry::now_ns();
    // Zero-length marker span carrying the flow origin ("s"): receivers'
    // wait spans point their flow steps/finish at this id, which is what
    // lets the critical-path walker (and Perfetto's arrows) jump from a
    // blocked receiver back to this exact send.
    telemetry::TraceEvent event;
    event.name = "msg_send";
    event.t_start_ns = envelope.ctx.send_ns;
    event.t_end_ns = envelope.ctx.send_ns;
    event.rank = envelope.ctx.origin_rank;
    event.flow_id = envelope.ctx.span_id;
    event.category = telemetry::Category::kSend;
    event.flow = telemetry::FlowDir::kOut;
    telemetry::record_event(event);
  }
  mailbox_of(dest).push(std::move(envelope));
}

void Communicator::send(int dest, int tag, Payload payload) {
  send_shared(dest, tag, SharedPayload(std::move(payload)));
}

void Communicator::send_shared(int dest, int tag, SharedPayload payload) {
  SENKF_REQUIRE(tag >= 0, "Communicator::send: user tags must be >= 0");
  telemetry::CountedSpan span(telemetry::Category::kSend, "send",
                              send_ns_counter());
  post(dest, tag, std::move(payload));
}

void Communicator::send_doubles(int dest, int tag,
                                const std::vector<double>& values) {
  Packer packer;
  packer.put_vector(values);
  send(dest, tag, packer.take());
}

Envelope Communicator::recv(int source, int tag) {
  return my_mailbox().pop(source, tag);
}

std::optional<Envelope> Communicator::recv_for(
    int source, int tag, std::chrono::milliseconds timeout) {
  return my_mailbox().pop_for(source, tag, timeout);
}

std::vector<double> Communicator::recv_doubles(int source, int tag) {
  const Envelope envelope = recv(source, tag);
  Unpacker unpacker(envelope.payload);
  return unpacker.get_vector<double>();
}

Request Communicator::isend(int dest, int tag, Payload payload) {
  send(dest, tag, std::move(payload));
  return Request();  // buffered: already complete
}

Request Communicator::irecv(int source, int tag) {
  return Request(&my_mailbox(), source, tag);
}

bool Communicator::iprobe(int source, int tag) {
  // try_pop + re-push moves the matched envelope to the queue tail, which
  // can reorder same-signature messages relative to one another only when
  // two matching envelopes are queued; callers that mix iprobe with
  // order-sensitive streams should use distinct tags per message kind (the
  // library's own users all do).
  if (auto envelope = my_mailbox().try_pop(source, tag)) {
    my_mailbox().push(std::move(*envelope));
    return true;
  }
  return false;
}

void Communicator::barrier() { bus_->barrier(comm_id_).arrive_and_wait(); }

void Communicator::broadcast(int root, std::vector<double>& values) {
  SENKF_REQUIRE(root >= 0 && root < size_,
                "Communicator::broadcast: bad root");
  if (size_ == 1) return;
  if (rank_ == root) {
    // Pack once, seal once: every destination receives a handle to the
    // same immutable buffer — fan-out is O(P) pointer pushes, not O(P)
    // payload copies.
    Packer packer;
    packer.reserve(sizeof(std::uint64_t) + values.size() * sizeof(double));
    packer.put_vector(values);
    const SharedPayload payload = packer.take_shared();
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      post(r, kCollectiveTag, payload);
    }
  } else {
    const Envelope envelope = my_mailbox().pop(root, kCollectiveTag);
    Unpacker unpacker(envelope.payload);
    values = unpacker.get_vector<double>();
  }
}

std::vector<double> Communicator::scatter(
    int root, const std::vector<std::vector<double>>& chunks) {
  SENKF_REQUIRE(root >= 0 && root < size_, "Communicator::scatter: bad root");
  if (rank_ == root) {
    SENKF_REQUIRE(chunks.size() == static_cast<std::size_t>(size_),
                  "Communicator::scatter: need one chunk per rank");
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      Packer packer;
      packer.reserve(sizeof(std::uint64_t) + chunks[r].size() * sizeof(double));
      packer.put_vector(chunks[r]);
      post(r, kCollectiveTag, packer.take_shared());
    }
    return chunks[root];
  }
  const Envelope envelope = my_mailbox().pop(root, kCollectiveTag);
  Unpacker unpacker(envelope.payload);
  return unpacker.get_vector<double>();
}

std::vector<std::vector<double>> Communicator::gather(
    int root, const std::vector<double>& mine) {
  SENKF_REQUIRE(root >= 0 && root < size_, "Communicator::gather: bad root");
  if (rank_ != root) {
    Packer packer;
    packer.put_vector(mine);
    post(root, kCollectiveTag, SharedPayload(packer.take()));
    return {};
  }
  std::vector<std::vector<double>> gathered(size_);
  gathered[root] = mine;
  for (int r = 0; r < size_; ++r) {
    if (r == root) continue;
    const Envelope envelope = my_mailbox().pop(r, kCollectiveTag);
    Unpacker unpacker(envelope.payload);
    gathered[r] = unpacker.get_vector<double>();
  }
  return gathered;
}

std::vector<double> Communicator::allreduce(const std::vector<double>& mine,
                                            ReduceOp op) {
  // Binomial-tree reduce to rank 0, then binomial-tree broadcast back:
  // O(log P) rounds on both legs instead of rank 0 touching all P
  // contributions serially.  Same kCollectiveTag framing as before;
  // parcomm stays the correctness plane — the DES models collective
  // costs separately (net/collectives.hpp).
  const auto combine = [op](std::vector<double>& acc,
                            std::span<const double> other) {
    SENKF_REQUIRE(other.size() == acc.size(),
                  "Communicator::allreduce: length mismatch across ranks");
    for (std::size_t i = 0; i < acc.size(); ++i) {
      switch (op) {
        case ReduceOp::kSum:
          acc[i] += other[i];
          break;
        case ReduceOp::kMin:
          acc[i] = std::min(acc[i], other[i]);
          break;
        case ReduceOp::kMax:
          acc[i] = std::max(acc[i], other[i]);
          break;
      }
    }
  };
  const auto send_doubles_collective = [&](int dest,
                                           const std::vector<double>& values) {
    Packer packer;
    packer.reserve(sizeof(std::uint64_t) + values.size() * sizeof(double));
    packer.put_vector(values);
    post(dest, kCollectiveTag, packer.take_shared());
  };

  std::vector<double> acc = mine;
  // Reduce leg: in round `mask` the ranks with that bit set fold their
  // partial into the partner below and go passive.
  for (int mask = 1; mask < size_; mask <<= 1) {
    if ((rank_ & mask) != 0) {
      send_doubles_collective(rank_ - mask, acc);
      break;
    }
    if (rank_ + mask < size_) {
      const Envelope envelope =
          my_mailbox().pop(rank_ + mask, kCollectiveTag);
      Unpacker unpacker(envelope.payload);
      combine(acc, unpacker.view<double>());
    }
  }

  // Broadcast leg: the reverse tree — each rank receives once from the
  // partner that owns its subtree (the rank below its lowest set bit),
  // then fans out to the subtree below that bit.  For rank 0 the loop
  // leaves up_mask at the first power of two >= size, so its children
  // sweep every bit position.
  int up_mask = 1;
  while (up_mask < size_ && (rank_ & up_mask) == 0) up_mask <<= 1;
  if (rank_ != 0) {
    const Envelope envelope =
        my_mailbox().pop(rank_ - up_mask, kCollectiveTag);
    Unpacker unpacker(envelope.payload);
    acc = unpacker.get_vector<double>();
  }
  for (int mask = up_mask >> 1; mask > 0; mask >>= 1) {
    if (rank_ + mask < size_) send_doubles_collective(rank_ + mask, acc);
  }
  return acc;
}

double Communicator::allreduce(double mine, ReduceOp op) {
  return allreduce(std::vector<double>{mine}, op)[0];
}

std::unique_ptr<Communicator> Communicator::split(int color, int key) {
  SENKF_REQUIRE(color >= 0 || color == kUndefinedColor,
                "Communicator::split: colors must be >= 0 or undefined");
  // Phase 1 — rendezvous: every rank deposits (color, key) and learns its
  // group placement (new rank and group size).
  const SplitOutcome outcome =
      bus_->split_state(comm_id_).arrive(rank_, SplitEntry{color, key});

  // Phase 2 — id distribution: each group's new-rank-0 creates the
  // communicator and announces (id, color) to every parent rank.  Every
  // announcement copy is private to its recipient, so discarding a
  // foreign-color copy is safe.
  std::unique_ptr<Communicator> result;
  if (color != kUndefinedColor) {
    if (outcome.new_rank == 0) {
      const int new_id = bus_->create_communicator(outcome.new_size);
      Packer packer;
      packer.put<int>(new_id);
      packer.put<int>(color);
      const SharedPayload announcement = packer.take_shared();
      for (int r = 0; r < size_; ++r) {
        if (r == rank_) continue;
        post(r, kSplitTag, announcement);
      }
      result = std::make_unique<Communicator>(bus_, new_id, 0,
                                              outcome.new_size);
    } else {
      int my_comm_id = -1;
      while (my_comm_id == -1) {
        const Envelope envelope = my_mailbox().pop(kAnySource, kSplitTag);
        Unpacker unpacker(envelope.payload);
        const int announced_id = unpacker.get<int>();
        const int announced_color = unpacker.get<int>();
        if (announced_color == color) my_comm_id = announced_id;
      }
      result = std::make_unique<Communicator>(bus_, my_comm_id,
                                              outcome.new_rank,
                                              outcome.new_size);
    }
  }

  // Phase 3 — cleanup: once every rank has passed the first barrier all
  // announcements have been pushed, so draining leftovers is race-free.
  // The trailing barrier fences this round's traffic from a subsequent
  // split() on the same parent communicator.
  barrier();
  while (my_mailbox().try_pop(kAnySource, kSplitTag)) {
  }
  barrier();
  return result;
}

}  // namespace senkf::parcomm
