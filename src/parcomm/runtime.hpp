// Thread-backed "virtual MPI job" launcher.
//
// `Runtime::run(n, main)` plays the role of mpirun: it spawns n threads,
// hands each a world Communicator, joins them all, and rethrows the first
// exception any rank raised (after every thread has exited, so no dangling
// references).  Ranks are plain callables, which keeps the EnKF
// implementations testable in-process and deterministic.
#pragma once

#include <functional>

#include "parcomm/communicator.hpp"

namespace senkf::parcomm {

class Runtime {
 public:
  using RankMain = std::function<void(Communicator&)>;

  /// Runs `rank_main` on `world_size` ranks and blocks until all finish.
  /// The first exception thrown by any rank is rethrown here.  If a rank
  /// throws while others are blocked in receives, the blocked ranks fail
  /// via Mailbox timeouts rather than hanging forever.
  static void run(int world_size, const RankMain& rank_main);
};

}  // namespace senkf::parcomm
