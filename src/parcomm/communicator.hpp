// MPI-flavoured communicator over the in-process Bus.
//
// This is the library's stand-in for the MPI subset the paper's workflows
// use (see DESIGN.md §2): blocking and buffered-nonblocking point-to-point,
// the collectives EnKF needs (barrier, bcast, scatter(v)/gather(v),
// allreduce) and communicator splitting — which S-EnKF uses to carve the
// processor set into I/O groups and computation ranks.
//
// Semantics: sends are buffered (they never block), receives match on
// (source, tag) with wildcards and are non-overtaking per (source, tag)
// pair.  All collectives must be called by every rank of the communicator
// in the same order, as in MPI.
#pragma once

#include <memory>
#include <vector>

#include "parcomm/bus.hpp"

namespace senkf::parcomm {

/// Color for Communicator::split meaning "I opt out of every group".
inline constexpr int kUndefinedColor = -1;

/// Handle for a pending non-blocking operation.  Buffered isend completes
/// immediately; irecv completes on wait()/test().
class Request {
 public:
  /// Blocks until complete; returns the received envelope for irecv (an
  /// empty envelope for isend).
  Envelope wait();

  /// True when a wait() would not block.
  bool test();

 private:
  friend class Communicator;
  Request() = default;  // completed isend
  Request(Mailbox* box, int source, int tag)
      : box_(box), source_(source), tag_(tag) {}

  Mailbox* box_ = nullptr;  // null → already complete
  int source_ = kAnySource;
  int tag_ = kAnyTag;
  bool done_ = false;
  Envelope result_;
};

class Communicator {
 public:
  Communicator(std::shared_ptr<Bus> bus, int comm_id, int rank, int size);

  int rank() const { return rank_; }
  int size() const { return size_; }
  int id() const { return comm_id_; }

  // ---- point-to-point ----------------------------------------------------

  /// Buffered send: seals the payload (no copy) and returns immediately.
  void send(int dest, int tag, Payload payload);

  /// Buffered send of an already-sealed payload handle — the fan-out
  /// primitive: sending the same handle to many destinations moves
  /// pointers, never bytes.
  void send_shared(int dest, int tag, SharedPayload payload);

  /// Convenience: packs a vector of doubles.
  void send_doubles(int dest, int tag, const std::vector<double>& values);

  /// Blocking receive with wildcard support.
  Envelope recv(int source = kAnySource, int tag = kAnyTag);

  /// Deadline-aware receive: blocks at most `timeout` and returns nullopt
  /// when nothing matched — a status, not an error, so callers can treat
  /// a silent peer as a straggler instead of hanging forever (the
  /// building block of S-EnKF's degraded I/O paths).
  std::optional<Envelope> recv_for(int source, int tag,
                                   std::chrono::milliseconds timeout);

  /// Convenience: unpacks a vector of doubles (payload must be one).
  std::vector<double> recv_doubles(int source = kAnySource,
                                   int tag = kAnyTag);

  /// Non-blocking (buffered) send: completes immediately.
  Request isend(int dest, int tag, Payload payload);

  /// Non-blocking receive: completes when wait()/test() finds a match.
  Request irecv(int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe: true if a matching message is queued.
  bool iprobe(int source = kAnySource, int tag = kAnyTag);

  // ---- collectives ---------------------------------------------------------

  /// All ranks block until every rank arrived.
  void barrier();

  /// Root's `values` is broadcast to everyone; others receive into it.
  void broadcast(int root, std::vector<double>& values);

  /// Root scatters `chunks[i]` to rank i (chunks may differ in length);
  /// returns this rank's chunk.  Non-roots pass an empty vector.
  std::vector<double> scatter(int root,
                              const std::vector<std::vector<double>>& chunks);

  /// Every rank contributes `mine`; root returns all contributions in rank
  /// order (others get an empty vector).  Variable lengths allowed.
  std::vector<std::vector<double>> gather(int root,
                                          const std::vector<double>& mine);

  enum class ReduceOp { kSum, kMin, kMax };

  /// Element-wise allreduce over equal-length vectors: binomial-tree
  /// reduce to rank 0 followed by a binomial-tree broadcast (O(log P)
  /// rounds each way).  Note the summation order differs from a serial
  /// rank-0..P-1 fold, as in any tree reduction.
  std::vector<double> allreduce(const std::vector<double>& mine, ReduceOp op);

  /// Scalar convenience allreduce.
  double allreduce(double mine, ReduceOp op);

  /// Splits into sub-communicators by color (kUndefinedColor opts out and
  /// yields nullptr).  Rank order within a color follows (key, old rank).
  std::unique_ptr<Communicator> split(int color, int key);

 private:
  Mailbox& my_mailbox();
  Mailbox& mailbox_of(int rank);

  /// Every outbound envelope funnels through here: counts payload bytes
  /// and, while tracing is armed, stamps the causal span context (origin
  /// rank, fresh flow id, send timestamp) and records the flow-origin
  /// trace event (DESIGN.md §13).  Cost with tracing off is one relaxed
  /// atomic load.
  void post(int dest, int tag, SharedPayload payload);

  // Internal tag space for collectives, disjoint from user tags (which
  // must be >= 0).
  static constexpr int kCollectiveTag = -1000;
  static constexpr int kSplitTag = -1001;

  std::shared_ptr<Bus> bus_;
  int comm_id_;
  int rank_;
  int size_;
};

}  // namespace senkf::parcomm
