#include "parcomm/wire.hpp"

#include <string>

#include "parcomm/payload_pool.hpp"

namespace senkf::parcomm {

namespace detail {
telemetry::Counter& payload_copies_counter() {
  static telemetry::Counter& counter =
      telemetry::Registry::global().counter("parcomm.payload_copies");
  return counter;
}
}  // namespace detail

namespace {
const Payload& empty_payload() {
  static const Payload empty;
  return empty;
}
}  // namespace

SharedPayload::SharedPayload(Payload&& bytes)
    : ptr_(new Payload(std::move(bytes)), [](Payload* p) {
        PayloadPool::global().release(std::move(*p));
        delete p;
      }) {}

const Payload& SharedPayload::bytes() const {
  return ptr_ == nullptr ? empty_payload() : *ptr_;
}

void Packer::reserve(std::size_t bytes) {
  if (bytes_.capacity() >= bytes) return;
  Payload grown = PayloadPool::global().acquire(bytes);
  grown.insert(grown.end(), bytes_.begin(), bytes_.end());
  PayloadPool::global().release(std::move(bytes_));
  bytes_ = std::move(grown);
}

void Unpacker::require_remaining(std::size_t needed, const char* what) const {
  if (remaining() < needed) {
    throw ProtocolError("Unpacker: truncated payload while reading " +
                        std::string(what) + " (need " +
                        std::to_string(needed) + " bytes, have " +
                        std::to_string(remaining()) + ")");
  }
}

void Unpacker::require_aligned(const std::byte* at,
                               std::size_t alignment) const {
  if (reinterpret_cast<std::uintptr_t>(at) % alignment != 0) {
    throw ProtocolError(
        "Unpacker::view: body is not aligned for the element type "
        "(alignment " +
        std::to_string(alignment) + ", offset " + std::to_string(cursor_) +
        ")");
  }
}

std::uint64_t Unpacker::checked_count(std::size_t elem_size,
                                      const char* what) {
  const auto count = get<std::uint64_t>();
  // Divide, never multiply: `count * elem_size` can wrap for a corrupt
  // prefix and slip a huge body past the bounds check.
  if (count > remaining() / elem_size) {
    throw ProtocolError("Unpacker: count prefix claims " +
                        std::to_string(count) + " elements of " +
                        std::to_string(elem_size) + " bytes while reading " +
                        std::string(what) + ", but only " +
                        std::to_string(remaining()) + " bytes remain");
  }
  return count;
}

}  // namespace senkf::parcomm
