#include "parcomm/wire.hpp"

#include <string>

namespace senkf::parcomm {

void Unpacker::require_remaining(std::size_t needed, const char* what) const {
  if (remaining() < needed) {
    throw ProtocolError("Unpacker: truncated payload while reading " +
                        std::string(what) + " (need " +
                        std::to_string(needed) + " bytes, have " +
                        std::to_string(remaining()) + ")");
  }
}

}  // namespace senkf::parcomm
