#include "parcomm/bus.hpp"

#include <algorithm>

namespace senkf::parcomm {

void BarrierState::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == participants_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
}

SplitOutcome SplitState::arrive(int rank, SplitEntry entry) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t my_generation = generation_;
  SENKF_REQUIRE(entries_.emplace(rank, entry).second,
                "split: rank arrived twice in the same round");
  if (static_cast<int>(entries_.size()) == participants_) {
    // Last arrival computes the outcome for everyone.  Colors are grouped;
    // within a color, ranks are ordered by (key, old rank).
    std::map<int, std::vector<std::pair<int, int>>> groups;  // color→(key,rank)
    for (const auto& [r, e] : entries_) {
      if (e.color >= 0) groups[e.color].push_back({e.key, r});
    }
    outcomes_.clear();
    for (auto& [color, members] : groups) {
      std::sort(members.begin(), members.end());
      for (std::size_t new_rank = 0; new_rank < members.size(); ++new_rank) {
        outcomes_[members[new_rank].second] =
            SplitOutcome{true, static_cast<int>(new_rank),
                         static_cast<int>(members.size())};
      }
    }
    for (const auto& [r, e] : entries_) {
      if (e.color < 0) outcomes_[r] = SplitOutcome{false, 0, 0};
    }
    entries_.clear();
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }
  return outcomes_.at(rank);
}

Bus::Bus(int world_size) : world_size_(world_size) {
  SENKF_REQUIRE(world_size > 0, "Bus: world size must be positive");
  comms_.push_back(std::make_unique<CommState>(world_size));
}

int Bus::create_communicator(int size) {
  SENKF_REQUIRE(size > 0, "Bus: communicator size must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  comms_.push_back(std::make_unique<CommState>(size));
  return static_cast<int>(comms_.size()) - 1;
}

Bus::CommState& Bus::comm(int comm_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  SENKF_REQUIRE(comm_id >= 0 && comm_id < static_cast<int>(comms_.size()),
                "Bus: unknown communicator id");
  return *comms_[comm_id];
}

Mailbox& Bus::mailbox(int comm_id, int rank) {
  CommState& state = comm(comm_id);
  SENKF_REQUIRE(rank >= 0 && rank < static_cast<int>(state.mailboxes.size()),
                "Bus: rank out of range for communicator");
  return *state.mailboxes[rank];
}

BarrierState& Bus::barrier(int comm_id) { return comm(comm_id).barrier; }

SplitState& Bus::split_state(int comm_id) { return comm(comm_id).split; }

}  // namespace senkf::parcomm
