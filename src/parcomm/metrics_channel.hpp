// Transport leg of the cross-rank observability plane (DESIGN.md §11).
//
// telemetry/aggregate.hpp owns the snapshot/merge/codec logic and knows
// nothing about messaging (telemetry sits below parcomm); this header
// ships the encoded snapshots over a caller-chosen tag using the
// zero-copy SharedPayload envelopes, reducing them to rank 0 along a
// binomial tree (the same O(log P) schedule as Communicator::allreduce).
#pragma once

#include <chrono>
#include <functional>

#include "parcomm/communicator.hpp"
#include "telemetry/aggregate.hpp"

namespace senkf::parcomm {

/// Binomial-tree reduce of per-rank snapshots onto rank 0.  Every rank of
/// `world` must call this with the same tag; the fully merged snapshot is
/// returned on rank 0 (other ranks get back their partial subtree).
///
/// `cancelled` makes the reduce abort-safe: when set, each receive polls
/// in `poll`-sized slices and gives up on a subtree (merging nothing,
/// still forwarding its own partial) once `cancelled()` turns true — so
/// ranks that outlive an aborting peer drain in O(poll) instead of
/// hitting the mailbox's protocol deadline.  With the default no-op
/// predicate, receives block indefinitely.
telemetry::MetricsSnapshot reduce_snapshots(
    Communicator& world, int tag, telemetry::MetricsSnapshot mine,
    const std::function<bool()>& cancelled = {},
    std::chrono::milliseconds poll = std::chrono::milliseconds(200));

}  // namespace senkf::parcomm
