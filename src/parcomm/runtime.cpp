#include "parcomm/runtime.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/trace.hpp"

namespace senkf::parcomm {

void Runtime::run(int world_size, const RankMain& rank_main) {
  SENKF_REQUIRE(world_size > 0, "Runtime: world size must be positive");
  SENKF_REQUIRE(rank_main != nullptr, "Runtime: rank main must be callable");

  auto bus = std::make_shared<Bus>(world_size);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(world_size);
  for (int rank = 0; rank < world_size; ++rank) {
    threads.emplace_back([&, rank] {
      try {
        // Every span this thread records is attributed to its rank
        // (helper threads and pool workers re-assert it themselves).
        telemetry::set_thread_rank(rank);
        Communicator world(bus, /*comm_id=*/0, rank, world_size);
        rank_main(world);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace senkf::parcomm
