// Per-rank message queue with MPI-style (source, tag) matching.
//
// A Mailbox holds the envelopes addressed to one (communicator, rank)
// pair.  `pop` blocks until an envelope matching the requested source/tag
// arrives (wildcards supported), preserving arrival order among matching
// envelopes — the non-overtaking guarantee MPI programs rely on.  A
// deadline turns silent deadlocks in user code into loud ProtocolErrors.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "parcomm/wire.hpp"

namespace senkf::parcomm {

/// Matches any source rank / any tag when passed to recv.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Causal span context piggybacked on every message (DESIGN.md §13).
/// Stamped by the sender only while tracing is armed — span_id 0 means
/// "no context" and costs nothing — so receiver-side wait spans can
/// record which sender span they were blocked on and the Chrome-trace
/// export can draw cross-rank flow arrows.  Lives in the envelope header
/// next to (source, tag), never in the payload: the zero-copy plane
/// shares one sealed payload across fan-out destinations, but each
/// destination gets its own envelope and hence its own context.
struct SpanContext {
  std::int32_t origin_rank = -1;  ///< world rank that sent the message
  std::uint64_t span_id = 0;      ///< telemetry flow id; 0 = untraced
  std::int64_t send_ns = 0;       ///< telemetry::now_ns() at send time
};

/// One queued message.  The payload is a refcounted handle, so an
/// envelope never owns a private copy of the bytes: fan-out pushes the
/// same sealed buffer to every destination, and moving an envelope out
/// of the queue moves a pointer.  Receivers that unpack by view must
/// keep the handle (or an Unpacker built from it) alive while the views
/// are in use.  `ctx` is last so the pre-existing three-member aggregate
/// initializers keep compiling (it default-initializes to "untraced").
struct Envelope {
  int source = 0;
  int tag = 0;
  SharedPayload payload;
  SpanContext ctx;
};

class Mailbox {
 public:
  /// Enqueues an envelope (called by the sender's thread).
  void push(Envelope envelope);

  /// Blocks until an envelope matching (source, tag) is available and
  /// removes it.  Throws ProtocolError after `timeout` (guards tests and
  /// examples against deadlock).
  Envelope pop(int source, int tag,
               std::chrono::milliseconds timeout = kDefaultTimeout);

  /// Deadline overload returning a status instead of throwing: nullopt
  /// means the deadline passed with nothing matching — the caller decides
  /// whether that is a straggler, a dead peer or business as usual.  A
  /// deadline already in the past degrades to try_pop.
  std::optional<Envelope> pop_until(
      int source, int tag, std::chrono::steady_clock::time_point deadline);

  /// Relative-timeout convenience over pop_until.
  std::optional<Envelope> pop_for(int source, int tag,
                                  std::chrono::milliseconds timeout);

  /// Non-blocking variant: returns nullopt when nothing matches now.
  std::optional<Envelope> try_pop(int source, int tag);

  /// Number of queued envelopes (diagnostic).
  std::size_t size() const;

  static constexpr std::chrono::milliseconds kDefaultTimeout{30000};

 private:
  static bool matches(const Envelope& envelope, int source, int tag) {
    return (source == kAnySource || envelope.source == source) &&
           (tag == kAnyTag || envelope.tag == tag);
  }

  std::optional<Envelope> take_matching_locked(int source, int tag);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
};

}  // namespace senkf::parcomm
