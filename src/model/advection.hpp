// A minimal geophysical dynamical core: 2-D advection–diffusion.
//
// EnKF is a *sequential* method: analyses become the initial conditions
// of the next model integration (§1).  This module provides the model
// for the forecast step of cycled experiments: semi-Lagrangian advection
// (unconditionally stable — departure points with bilinear
// interpolation) plus explicit diffusion, periodic along longitude and
// reflective along latitude, matching the lat-lon storage conventions of
// grid::Field.
#pragma once

#include "grid/field.hpp"

namespace senkf::model {

using grid::Index;

struct AdvectionDiffusionConfig {
  /// Zonal / meridional velocity in grid cells per step.  Values may be
  /// fractional or exceed 1 — semi-Lagrangian stepping has no CFL limit.
  double u = 0.7;
  double v = 0.15;
  /// Non-dimensional diffusion number κ·Δt/Δx² per step; explicit
  /// stepping requires ≤ 0.25.
  double diffusion = 0.02;
};

class AdvectionDiffusion {
 public:
  AdvectionDiffusion(const grid::LatLonGrid& mesh,
                     const AdvectionDiffusionConfig& config = {});

  const grid::LatLonGrid& mesh() const { return mesh_; }
  const AdvectionDiffusionConfig& config() const { return config_; }

  /// One step: advect along the flow, then diffuse.
  grid::Field step(const grid::Field& state) const;

  /// `steps` repeated applications.
  grid::Field advance(grid::Field state, Index steps) const;

  /// Advances every ensemble member in place.
  void advance_ensemble(std::vector<grid::Field>& members,
                        Index steps) const;

 private:
  /// Field value at fractional coordinates with periodic-x/reflective-y
  /// boundary treatment and bilinear interpolation.
  double sample(const grid::Field& state, double x, double y) const;

  grid::LatLonGrid mesh_;
  AdvectionDiffusionConfig config_;
};

}  // namespace senkf::model
