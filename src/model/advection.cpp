#include "model/advection.hpp"

#include <algorithm>
#include <cmath>

namespace senkf::model {

AdvectionDiffusion::AdvectionDiffusion(const grid::LatLonGrid& mesh,
                                       const AdvectionDiffusionConfig& config)
    : mesh_(mesh), config_(config) {
  SENKF_REQUIRE(config.diffusion >= 0.0 && config.diffusion <= 0.25,
                "AdvectionDiffusion: diffusion number must be in [0, 0.25]");
  SENKF_REQUIRE(mesh.nx() >= 2 && mesh.ny() >= 2,
                "AdvectionDiffusion: mesh too small");
}

double AdvectionDiffusion::sample(const grid::Field& state, double x,
                                  double y) const {
  const double nx = static_cast<double>(mesh_.nx());
  const double ny = static_cast<double>(mesh_.ny());
  // Periodic along longitude.
  x = std::fmod(x, nx);
  if (x < 0.0) x += nx;
  // Reflective along latitude.
  if (y < 0.0) y = -y;
  const double y_max = ny - 1.0;
  if (y > y_max) y = 2.0 * y_max - y;
  y = std::clamp(y, 0.0, y_max);

  const Index x0 = static_cast<Index>(x) % mesh_.nx();
  const Index x1 = (x0 + 1) % mesh_.nx();
  const Index y0 = static_cast<Index>(y);
  const Index y1 = std::min(y0 + 1, mesh_.ny() - 1);
  const double fx = x - std::floor(x);
  const double fy = y - static_cast<double>(y0);

  return (1.0 - fx) * (1.0 - fy) * state.at(x0, y0) +
         fx * (1.0 - fy) * state.at(x1, y0) +
         (1.0 - fx) * fy * state.at(x0, y1) +
         fx * fy * state.at(x1, y1);
}

grid::Field AdvectionDiffusion::step(const grid::Field& state) const {
  SENKF_REQUIRE(state.size() == mesh_.size(),
                "AdvectionDiffusion: field/mesh mismatch");
  // Semi-Lagrangian advection: trace each arrival point back along the
  // (constant) flow and interpolate there.
  grid::Field advected(mesh_);
  for (Index y = 0; y < mesh_.ny(); ++y) {
    for (Index x = 0; x < mesh_.nx(); ++x) {
      advected.at(x, y) = sample(state,
                                 static_cast<double>(x) - config_.u,
                                 static_cast<double>(y) - config_.v);
    }
  }
  if (config_.diffusion == 0.0) return advected;

  // Explicit 5-point diffusion with the same boundary treatment.
  grid::Field out(mesh_);
  const double kappa = config_.diffusion;
  for (Index y = 0; y < mesh_.ny(); ++y) {
    const Index y_up = y + 1 < mesh_.ny() ? y + 1 : y - 1;   // reflect
    const Index y_dn = y > 0 ? y - 1 : y + 1;                // reflect
    for (Index x = 0; x < mesh_.nx(); ++x) {
      const Index x_e = (x + 1) % mesh_.nx();
      const Index x_w = (x + mesh_.nx() - 1) % mesh_.nx();
      const double center = advected.at(x, y);
      const double laplacian = advected.at(x_e, y) + advected.at(x_w, y) +
                               advected.at(x, y_up) + advected.at(x, y_dn) -
                               4.0 * center;
      out.at(x, y) = center + kappa * laplacian;
    }
  }
  return out;
}

grid::Field AdvectionDiffusion::advance(grid::Field state,
                                        Index steps) const {
  for (Index s = 0; s < steps; ++s) state = step(state);
  return state;
}

void AdvectionDiffusion::advance_ensemble(std::vector<grid::Field>& members,
                                          Index steps) const {
  for (auto& member : members) member = advance(std::move(member), steps);
}

}  // namespace senkf::model
