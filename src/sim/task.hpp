// Coroutine task type for the discrete-event simulator.
//
// A sim::Task is a lazily-started coroutine representing one simulated
// activity (a processor's workflow, a read request, ...).  Tasks compose:
// `co_await child_task` suspends the parent until the child finishes
// (exceptions propagate), while `Simulation::spawn` runs a task
// fire-and-forget with the simulation owning its lifetime.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "support/error.hpp"

namespace senkf::sim {

class Simulation;

class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  // parent awaiting us, if any
    std::exception_ptr error;
    bool done = false;
    bool detached = false;  // lifetime owned by Simulation (spawn)

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> self) noexcept {
        self.promise().done = true;
        if (self.promise().continuation) {
          return self.promise().continuation;  // symmetric transfer
        }
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Awaiting a task starts it and suspends the awaiter until it is done.
  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;  // start the child immediately
      }
      void await_resume() {
        if (child.promise().error) {
          std::rethrow_exception(child.promise().error);
        }
      }
    };
    SENKF_REQUIRE(handle_ != nullptr, "Task: awaiting a moved-from task");
    return Awaiter{handle_};
  }

 private:
  friend class Simulation;

  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace senkf::sim
