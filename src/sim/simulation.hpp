// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, insertion order)
// order.  The engine provides the simulated clock, `delay` awaitable and
// fire-and-forget `spawn`; blocking-style coordination lives in
// primitives.hpp (Resource, WaitGroup, Event, Queue).
//
// This is the "timing plane" of the library (DESIGN.md §6): the same
// workflow geometry the numeric plane executes is replayed here against
// models of disks and networks to predict behaviour at 12,000 processors.
#pragma once

#include <queue>
#include <vector>

#include "sim/task.hpp"

namespace senkf::sim {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  /// Current simulated time in seconds.
  double now() const { return now_; }

  /// Schedules a fire-and-forget task at the current time.  The
  /// simulation owns the coroutine's lifetime.
  void spawn(Task task);

  /// Awaitable that resumes the caller `seconds` later.
  /// Usage: `co_await sim.delay(0.5);`
  auto delay(double seconds) {
    SENKF_REQUIRE(seconds >= 0.0, "Simulation::delay: negative delay");
    struct Awaiter {
      Simulation* sim;
      double seconds;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> handle) {
        sim->schedule_at(sim->now_ + seconds, handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, seconds};
  }

  /// Runs until no events remain.  Throws the first exception raised by a
  /// spawned task; throws ProtocolError if spawned tasks never finished
  /// (a simulated deadlock).
  void run();

  /// Number of events processed by the last run() (diagnostic).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Internal: schedule a raw coroutine resumption (used by primitives to
  /// defer wake-ups through the event queue, keeping resumption order
  /// deterministic and stacks flat).
  void schedule_at(double time, std::coroutine_handle<> handle);
  void schedule_now(std::coroutine_handle<> handle) {
    schedule_at(now_, handle);
  }

 private:
  struct Event {
    double time;
    std::uint64_t sequence;
    std::coroutine_handle<> handle;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  void destroy_roots();

  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::coroutine_handle<Task::promise_type>> roots_;
};

}  // namespace senkf::sim
