// Coordination primitives for simulated processes.
//
//  * Resource  — counted resource with FIFO admission (disk streams,
//                network injection slots);
//  * WaitGroup — join-point for a dynamic set of tasks;
//  * Event     — one-shot broadcast signal;
//  * Queue<T>  — FIFO channel between simulated processes (the DES
//                analogue of a parcomm mailbox).
//
// All wake-ups go through Simulation's event queue at the current time, so
// resumption order is deterministic and call stacks stay flat.  Queue uses
// direct value handoff to a woken consumer, which keeps multi-consumer
// queues race-free (an already-ready consumer can never steal an item that
// was promised to a suspended one).
#pragma once

#include <deque>
#include <optional>

#include "sim/simulation.hpp"

namespace senkf::sim {

/// Counted FIFO resource.  `co_await resource.acquire()` blocks while all
/// units are in use; `release()` wakes the longest waiter and transfers
/// the unit to it.
class Resource {
 public:
  Resource(Simulation& sim, int capacity);

  int capacity() const { return capacity_; }
  int in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiters_.size(); }

  /// Total time callers spent queued (utilization diagnostics).
  double total_wait_time() const { return total_wait_time_; }

  auto acquire() {
    struct Awaiter {
      Resource* resource;
      double enqueue_time = 0.0;
      bool queued = false;
      bool await_ready() {
        if (resource->in_use_ < resource->capacity_) {
          ++resource->in_use_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> handle) {
        queued = true;
        enqueue_time = resource->sim_.now();
        resource->waiters_.push_back(handle);
      }
      void await_resume() {
        // On the queued path the unit was transferred by release().
        if (queued) {
          resource->total_wait_time_ += resource->sim_.now() - enqueue_time;
        }
      }
    };
    return Awaiter{this};
  }

  /// Returns one unit; if someone is queued the unit transfers to them.
  void release();

 private:
  Simulation& sim_;
  int capacity_;
  int in_use_ = 0;
  double total_wait_time_ = 0.0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Join-point: `add(n)` registers work, `done()` retires one unit, and
/// `co_await wait()` resumes when the count reaches zero.  Reusable: a
/// later add() re-arms it for the next round.
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : sim_(sim) {}

  void add(int count = 1);
  void done();
  int pending() const { return pending_; }

  auto wait() {
    struct Awaiter {
      WaitGroup* group;
      bool await_ready() const { return group->pending_ == 0; }
      void await_suspend(std::coroutine_handle<> handle) {
        group->waiters_.push_back(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation& sim_;
  int pending_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// One-shot broadcast event.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(sim) {}

  bool is_set() const { return set_; }
  void set();

  auto wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const { return event->set_; }
      void await_suspend(std::coroutine_handle<> handle) {
        event->waiters_.push_back(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation& sim_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel; pop() suspends while empty.  Values promised to
/// suspended consumers are handed off directly, never re-queued.
template <typename T>
class Queue {
 public:
  explicit Queue(Simulation& sim) : sim_(sim) {}

  void push(T value) {
    if (!waiters_.empty()) {
      Waiter waiter = waiters_.front();
      waiters_.pop_front();
      *waiter.slot = std::move(value);
      sim_.schedule_now(waiter.handle);
      return;
    }
    items_.push_back(std::move(value));
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  auto pop() {
    struct Awaiter {
      Queue* queue;
      std::optional<T> slot;
      bool await_ready() {
        if (!queue->items_.empty()) {
          slot = std::move(queue->items_.front());
          queue->items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> handle) {
        queue->waiters_.push_back(Waiter{handle, &slot});
      }
      T await_resume() {
        SENKF_ASSERT(slot.has_value());
        return std::move(*slot);
      }
    };
    return Awaiter{this};
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  Simulation& sim_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

}  // namespace senkf::sim
