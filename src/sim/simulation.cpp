#include "sim/simulation.hpp"

#include <string>

namespace senkf::sim {

Simulation::~Simulation() { destroy_roots(); }

void Simulation::destroy_roots() {
  for (auto handle : roots_) {
    if (handle) handle.destroy();
  }
  roots_.clear();
}

void Simulation::spawn(Task task) {
  auto handle = task.release();
  SENKF_REQUIRE(handle != nullptr, "Simulation::spawn: empty task");
  handle.promise().detached = true;
  roots_.push_back(handle);
  schedule_now(handle);
}

void Simulation::schedule_at(double time, std::coroutine_handle<> handle) {
  SENKF_REQUIRE(time >= now_, "Simulation: cannot schedule in the past");
  queue_.push(Event{time, next_sequence_++, handle});
}

void Simulation::run() {
  events_processed_ = 0;
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.handle.resume();
  }

  // Surface errors and deadlocks from detached tasks.
  std::exception_ptr first_error;
  std::size_t unfinished = 0;
  for (auto handle : roots_) {
    if (!handle) continue;
    if (handle.promise().error && !first_error) {
      first_error = handle.promise().error;
    }
    if (!handle.promise().done) ++unfinished;
  }
  destroy_roots();
  if (first_error) std::rethrow_exception(first_error);
  if (unfinished > 0) {
    throw ProtocolError("Simulation::run: " + std::to_string(unfinished) +
                        " task(s) never finished (simulated deadlock)");
  }
}

}  // namespace senkf::sim
