#include "sim/primitives.hpp"

namespace senkf::sim {

Resource::Resource(Simulation& sim, int capacity)
    : sim_(sim), capacity_(capacity) {
  SENKF_REQUIRE(capacity > 0, "Resource: capacity must be positive");
}

void Resource::release() {
  SENKF_REQUIRE(in_use_ > 0, "Resource::release: nothing to release");
  if (!waiters_.empty()) {
    // Transfer the unit to the longest waiter; in_use_ stays constant.
    const auto handle = waiters_.front();
    waiters_.pop_front();
    sim_.schedule_now(handle);
    return;
  }
  --in_use_;
}

void WaitGroup::add(int count) {
  SENKF_REQUIRE(count > 0, "WaitGroup::add: count must be positive");
  pending_ += count;
}

void WaitGroup::done() {
  SENKF_REQUIRE(pending_ > 0, "WaitGroup::done: nothing pending");
  if (--pending_ == 0) {
    for (const auto handle : waiters_) sim_.schedule_now(handle);
    waiters_.clear();
  }
}

void Event::set() {
  SENKF_REQUIRE(!set_, "Event::set: already set");
  set_ = true;
  for (const auto handle : waiters_) sim_.schedule_now(handle);
  waiters_.clear();
}

}  // namespace senkf::sim
