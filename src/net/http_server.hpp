// Embedded HTTP/1.1 server for the live operations plane (DESIGN.md §16).
//
// One dedicated acceptor thread serves GET requests against a fixed
// route table; handlers run on that thread and are expected to produce
// small snapshot responses (a registry scrape, a job-table dump), so the
// instrumented run never blocks on a client.  The server binds loopback
// only — this is an operator diagnostic port, not a public API — and
// supports port 0 (ephemeral) so tests can run in parallel.
//
// Deliberately minimal: no keep-alive, no TLS, no request bodies.  A
// scrape client (Prometheus, curl) sends one GET and reads one response;
// everything else answers 404/405 and closes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace senkf::net {

struct HttpRequest {
  std::string method;  ///< "GET", uppercased
  std::string path;    ///< path only, query string stripped
  std::string query;   ///< raw query string ("" when absent)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A route handler; runs on the server thread, must not throw (a throw
/// is converted to a 500 with the exception message).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path`.  Must be called before
  /// start(); later registrations race the acceptor thread.
  void add_route(std::string path, HttpHandler handler);

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned) and launches the
  /// acceptor thread.  Throws support-free std::runtime_error on bind
  /// failure (the caller decides whether a busy port is fatal).
  void start(std::uint16_t port);

  /// Stops the acceptor and joins its thread; idempotent and safe to
  /// call from atexit (no locks held while joining).
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (resolves port 0); 0 when not started.
  std::uint16_t port() const { return port_; }

 private:
  void serve();
  void handle_connection(int client_fd);

  std::map<std::string, HttpHandler> routes_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe that unblocks the acceptor
  std::uint16_t port_ = 0;
};

/// Blocking one-shot GET against 127.0.0.1:`port` — the test/CI client
/// half of the server above.  Returns the raw response body and fills
/// `status`; throws std::runtime_error on connect/read failure.
std::string http_get(std::uint16_t port, const std::string& path,
                     int* status = nullptr);

}  // namespace senkf::net
