#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace senkf::net {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default:  return "Unknown";
  }
}

// Writes the whole buffer, retrying short writes; EPIPE/reset from an
// impatient client is silently dropped (the snapshot is disposable).
void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

// Reads until the end of the request headers (CRLFCRLF) or 8 KiB; scrape
// clients send no body, so this is the whole request.
std::string read_request(int fd) {
  std::string data;
  char buf[2048];
  while (data.size() < 8192 &&
         data.find("\r\n\r\n") == std::string::npos &&
         data.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    data.append(buf, static_cast<std::size_t>(n));
  }
  return data;
}

bool parse_request_line(const std::string& raw, HttpRequest* out) {
  const std::size_t eol = raw.find_first_of("\r\n");
  if (eol == std::string::npos) return false;
  std::istringstream line(raw.substr(0, eol));
  std::string method, target, version;
  if (!(line >> method >> target >> version)) return false;
  for (char& c : method) c = static_cast<char>(std::toupper(c));
  out->method = method;
  const std::size_t q = target.find('?');
  out->path = target.substr(0, q);
  out->query = q == std::string::npos ? "" : target.substr(q + 1);
  return !out->path.empty() && out->path[0] == '/';
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::add_route(std::string path, HttpHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

void HttpServer::start(std::uint16_t port) {
  if (running_.load(std::memory_order_acquire)) return;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        std::string("HttpServer: cannot listen on 127.0.0.1:") +
        std::to_string(port) + ": " + std::strerror(err));
  }

  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }

  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: pipe() failed");
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Wake the poll() so the acceptor notices the flag without waiting for
  // the next client.
  if (wake_fds_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  port_ = 0;
}

void HttpServer::serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (!running_.load(std::memory_order_acquire)) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void HttpServer::handle_connection(int client_fd) {
  HttpRequest request;
  HttpResponse response;
  if (!parse_request_line(read_request(client_fd), &request)) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (request.method != "GET" && request.method != "HEAD") {
    response = {405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else {
    const auto it = routes_.find(request.path);
    if (it == routes_.end()) {
      response = {404, "text/plain; charset=utf-8",
                  "no route " + request.path + "\n"};
    } else {
      try {
        response = it->second(request);
      } catch (const std::exception& e) {
        response = {500, "text/plain; charset=utf-8",
                    std::string("handler error: ") + e.what() + "\n"};
      } catch (...) {
        response = {500, "text/plain; charset=utf-8", "handler error\n"};
      }
    }
  }

  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " " << status_text(response.status)
      << "\r\nContent-Type: " << response.content_type
      << "\r\nContent-Length: " << response.body.size()
      << "\r\nConnection: close\r\n\r\n";
  if (request.method != "HEAD") out << response.body;
  write_all(client_fd, out.str());
}

std::string http_get(std::uint16_t port, const std::string& path,
                     int* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http_get: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("http_get: cannot connect to 127.0.0.1:" +
                             std::to_string(port));
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Connection: close\r\n\r\n";
  write_all(fd, request);

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t eol = raw.find("\r\n");
  if (eol == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    throw std::runtime_error("http_get: malformed response");
  }
  if (status != nullptr) {
    std::istringstream line(raw.substr(0, eol));
    std::string version;
    line >> version >> *status;
  }
  const std::size_t body = raw.find("\r\n\r\n");
  return body == std::string::npos ? "" : raw.substr(body + 4);
}

}  // namespace senkf::net
