// Network cost model (alpha–beta with log-tree collectives).
//
// The paper's cost analysis (§4.3, extending Rabenseifner / Thakur-style
// collective models, refs [3][26][30]) treats the interconnect as
// full-duplex with per-message startup `a` and per-byte transfer `b`.
// The DES uses these formulas as message delays — contention on the NIC
// is modelled by serializing a sender's outgoing messages, which matches
// the single-port assumption of the classic models.
#pragma once

#include <cstdint>

#include "support/error.hpp"

namespace senkf::net {

struct NetConfig {
  /// Startup time per message, seconds ("a" in the paper's Table 1).
  double alpha = 5e-6;
  /// Transfer time per byte, seconds ("b"); 5e-10 ≈ a 2 GB/s link.
  double beta = 5e-10;
};

class Net {
 public:
  explicit Net(const NetConfig& config);

  const NetConfig& config() const { return config_; }

  /// Point-to-point time for one message of `bytes`.
  double p2p_time(double bytes) const;

  /// Binomial-tree broadcast among `participants` ranks.
  double broadcast_time(double bytes, int participants) const;

  /// `messages` back-to-back sends from one port (single-port serialization).
  double serialized_sends_time(int messages, double bytes_each) const;

  /// ceil(log2(n)) with log2(1) = 0 — the tree depth used by the paper's
  /// log(·) factors.
  static int log2_ceil(int n);

 private:
  NetConfig config_;
};

}  // namespace senkf::net
