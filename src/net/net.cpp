#include "net/net.hpp"

namespace senkf::net {

Net::Net(const NetConfig& config) : config_(config) {
  SENKF_REQUIRE(config.alpha >= 0.0 && config.beta >= 0.0,
                "Net: alpha and beta must be non-negative");
}

double Net::p2p_time(double bytes) const {
  SENKF_REQUIRE(bytes >= 0.0, "Net::p2p_time: negative size");
  return config_.alpha + config_.beta * bytes;
}

double Net::broadcast_time(double bytes, int participants) const {
  SENKF_REQUIRE(participants > 0, "Net::broadcast_time: need participants");
  return static_cast<double>(log2_ceil(participants)) * p2p_time(bytes);
}

double Net::serialized_sends_time(int messages, double bytes_each) const {
  SENKF_REQUIRE(messages >= 0, "Net::serialized_sends_time: negative count");
  return static_cast<double>(messages) * p2p_time(bytes_each);
}

int Net::log2_ceil(int n) {
  SENKF_REQUIRE(n > 0, "log2_ceil: n must be positive");
  int depth = 0;
  int reach = 1;
  while (reach < n) {
    reach *= 2;
    ++depth;
  }
  return depth;
}

}  // namespace senkf::net
