// Simulated EnKF workflows at arbitrary processor counts.
//
// Each function builds a fresh Simulation, spawns one coroutine per
// simulated actor, runs to completion and reports timings.  Symmetric
// actors are collapsed where the model makes them exactly identical
// (S-EnKF computation processors within one latitude row); actors that
// contend for shared resources individually (block readers queueing on
// OSTs) are simulated one-by-one.
//
// These are the generators behind every figure reproduction:
//   Fig 1/9/13 — simulate_penkf / simulate_senkf,
//   Fig 5      — simulate_block_read over n_sdx,
//   Fig 10     — simulate_concurrent_read over n_cg,
//   Fig 11     — simulate_senkf overlap fraction,
//   Fig 12     — simulate_read_and_comm (the T₁ = T_read + T_comm probe).
#pragma once

#include <cstdint>

#include "io/read_plan.hpp"
#include "vcluster/machine.hpp"

namespace senkf::vcluster {

/// Outcome of a pure reading workflow.
struct ReadResult {
  double makespan = 0.0;     ///< wall-clock of the whole read (seconds)
  double queued_time = 0.0;  ///< total time requests waited for disk slots
  std::uint64_t requests = 0;
};

/// P-EnKF/block reading (§4.1.1, Fig. 3): n_sdx × n_sdy processors each
/// read their block of every member file; a block costs one addressing
/// operation per latitude row it spans.
ReadResult simulate_block_read(const MachineConfig& machine,
                               const SimWorkload& workload,
                               std::uint64_t n_sdx, std::uint64_t n_sdy);

/// L-EnKF baseline reading (§3.1): one reader fetches every file whole and
/// scatters blocks to the other processors over the network, serially.
ReadResult simulate_single_reader(const MachineConfig& machine,
                                  const SimWorkload& workload,
                                  std::uint64_t n_procs);

/// Bar reading with concurrent groups (§4.1.2–4.1.3, Fig. 6):
/// n_cg groups × n_sdy readers; group g reads files {f : f ≡ g (mod n_cg)}
/// one after another, each reader taking its contiguous bar in one
/// addressing operation.  n_cg = 1 is plain bar reading.
ReadResult simulate_concurrent_read(const MachineConfig& machine,
                                    const SimWorkload& workload,
                                    std::uint64_t n_sdy, std::uint64_t n_cg);

/// Prices an arbitrary io::ReadPlan on the PFS model: each reader is a
/// simulated process issuing its ops in order; op f of member m goes to
/// member m's OST with the plan's segment/byte accounting.  The bespoke
/// workflows above are equivalent to pricing the matching plans (tested),
/// and custom plans can be explored without writing a new workflow.
ReadResult simulate_read_plan(const MachineConfig& machine,
                              const io::ReadPlan& plan);

/// Full P-EnKF run (read-then-update, no overlap).
struct PenkfResult {
  double makespan = 0.0;
  double read_time = 0.0;     ///< makespan − compute (reads finish last)
  double compute_time = 0.0;  ///< c · points-per-subdomain
  double io_fraction = 0.0;   ///< read_time / makespan (Fig. 1's series)
};

PenkfResult simulate_penkf(const MachineConfig& machine,
                           const SimWorkload& workload, std::uint64_t n_sdx,
                           std::uint64_t n_sdy);

/// Full L-EnKF run: single reader + serial scatter, then the phased local
/// update (the weakest baseline; §3.1 and Related Work).
PenkfResult simulate_lenkf(const MachineConfig& machine,
                           const SimWorkload& workload, std::uint64_t n_sdx,
                           std::uint64_t n_sdy);

/// S-EnKF multi-stage parameters (§4.2); the auto-tuner (src/tuning)
/// produces these.
struct SenkfParams {
  std::uint64_t n_sdx = 1;
  std::uint64_t n_sdy = 1;
  std::uint64_t layers = 1;  ///< L
  std::uint64_t n_cg = 1;

  std::uint64_t computation_processors() const { return n_sdx * n_sdy; }
  std::uint64_t io_processors() const { return n_cg * n_sdy; }
};

/// Full S-EnKF run: concurrent-group reading + multi-stage overlap.
struct SenkfResult {
  double makespan = 0.0;
  // Mean per-I/O-processor phase times.
  double io_read = 0.0;    ///< stream service time (disk busy)
  double io_queued = 0.0;  ///< waiting for a disk stream slot
  double io_comm = 0.0;    ///< serialized block sends
  double io_wait = 0.0;    ///< flow-control waiting on computation
  // Mean per-computation-processor phase times.
  double compute = 0.0;
  double comp_wait = 0.0;  ///< waiting for stage data (incl. prologue)
  double prologue = 0.0;   ///< unoverlappable first read+comm (§5.4)
  /// Fraction of the makespan during which data obtaining ran concurrently
  /// with local analysis (Fig. 11's series).
  double overlap_fraction = 0.0;
};

SenkfResult simulate_senkf(const MachineConfig& machine,
                           const SimWorkload& workload,
                           const SenkfParams& params);

/// T₁ = T_read + T_comm measured by the DES for given parameters — the
/// "test data" scattered against the model curve in Fig. 12.  Runs one
/// stage of the S-EnKF data-obtaining pipeline (the quantity equations
/// (7)+(8) describe: the unoverlappable per-stage read + communication).
double simulate_read_and_comm(const MachineConfig& machine,
                              const SimWorkload& workload,
                              const SenkfParams& params);

}  // namespace senkf::vcluster
