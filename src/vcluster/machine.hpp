// Virtual cluster description: the simulated Tianhe-2 stand-in.
//
// MachineConfig bundles the PFS and network models with the one
// computation constant the paper's cost model uses (`c`, the local
// analysis cost per grid point).  SimWorkload mirrors the paper's
// evaluation workload: a 3600×1800 0.1° mesh, 120 ensemble members,
// 8-byte values, and the localization halo.
//
// Calibration (see EXPERIMENTS.md): the defaults are chosen so the
// simulated P-EnKF stops strong-scaling near 8,000 cores and trails
// S-EnKF by ≈3× at 12,000 — the paper's headline observations — while
// keeping every *structural* property (seek counts, stream caps, file
// placement, alpha-beta messaging) exactly as analysed in §4.
#pragma once

#include "net/net.hpp"
#include "pfs/pfs.hpp"

namespace senkf::vcluster {

struct MachineConfig {
  pfs::PfsConfig pfs{
      /*ost_count=*/6,
      pfs::OstConfig{/*segment_overhead_s=*/220e-9,
                     /*stream_bandwidth=*/400e6,
                     /*max_streams=*/10},
      /*stripe_count=*/1,
      /*faults=*/{},
  };
  net::NetConfig net{/*alpha=*/2e-6, /*beta=*/1e-10};
  /// "c" in Table 1: local-analysis cost per grid point (seconds).
  /// Calibrated against the *scalar* kernels; see analysis_speedup.
  double update_cost_per_point_s = 1.0e-3;
  /// Measured speedup of the local analysis from the blocked SIMD kernels
  /// and the per-rank analysis pool (linalg/kernels/, support/thread_pool)
  /// relative to the scalar single-threaded baseline `c` was calibrated
  /// on.  Divides T_comp in the cost model; 1.0 models the baseline
  /// compute plane (the paper's configuration, and the default so the
  /// calibrated figure reproductions are unchanged).
  double analysis_speedup = 1.0;
};

struct SimWorkload {
  std::uint64_t nx = 3600;       ///< longitude points
  std::uint64_t ny = 1800;       ///< latitude points
  std::uint64_t members = 120;   ///< N: background ensemble members (files)
  std::uint64_t halo_xi = 4;     ///< ξ: longitude halo (grid points)
  std::uint64_t halo_eta = 2;    ///< η: latitude halo (grid points)
  double bytes_per_point = 8.0;  ///< h: stored bytes per grid point & level
  /// Vertical levels per column (the paper's data has 30).  Levels scale
  /// every data volume — a column's levels are stored contiguously, so
  /// segment counts are unaffected.  The calibrated default machine uses
  /// 1 (h folds the per-column payload); raise it for what-if studies.
  std::uint64_t levels = 1;

  /// Effective bytes a grid point contributes (all levels).
  double point_bytes() const {
    return bytes_per_point * static_cast<double>(levels);
  }

  /// Bytes of one background-ensemble-member file.
  double member_bytes() const {
    return static_cast<double>(nx) * static_cast<double>(ny) * point_bytes();
  }

  /// Bytes of one full-width latitude bar (file / n_sdy).
  double bar_bytes(std::uint64_t n_sdy) const {
    return member_bytes() / static_cast<double>(n_sdy);
  }

  /// Rows a computation processor owns per stage.
  std::uint64_t rows_per_stage(std::uint64_t n_sdy,
                               std::uint64_t layers) const {
    return ny / n_sdy / layers;
  }
};

}  // namespace senkf::vcluster
