#include "vcluster/workflows.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/primitives.hpp"

namespace senkf::vcluster {

namespace {

void require_divisible(std::uint64_t value, std::uint64_t divisor,
                       const char* what) {
  SENKF_REQUIRE(divisor > 0 && value % divisor == 0, what);
}

void validate_grid_split(const SimWorkload& workload, std::uint64_t n_sdx,
                         std::uint64_t n_sdy) {
  require_divisible(workload.nx, n_sdx,
                    "workflow: nx must be a multiple of n_sdx");
  require_divisible(workload.ny, n_sdy,
                    "workflow: ny must be a multiple of n_sdy");
}

}  // namespace

ReadResult simulate_block_read(const MachineConfig& machine,
                               const SimWorkload& workload,
                               std::uint64_t n_sdx, std::uint64_t n_sdy) {
  validate_grid_split(workload, n_sdx, n_sdy);
  sim::Simulation sim;
  pfs::Pfs storage(sim, machine.pfs);

  // A block spans (ny / n_sdy) latitude rows; every row is a separate
  // non-contiguous segment of the stored file (§4.1.1).
  const std::uint64_t segments = workload.ny / n_sdy;
  const double block_bytes =
      workload.member_bytes() / static_cast<double>(n_sdx * n_sdy);
  const std::uint64_t n_procs = n_sdx * n_sdy;

  ReadResult result;
  result.requests = n_procs * workload.members;

  auto reader = [&](std::uint64_t) -> sim::Task {
    for (std::uint64_t f = 0; f < workload.members; ++f) {
      co_await storage.read(f, segments, block_bytes);
    }
  };
  for (std::uint64_t p = 0; p < n_procs; ++p) sim.spawn(reader(p));
  sim.run();

  result.makespan = sim.now();
  result.queued_time = storage.total_queued_time();
  return result;
}

ReadResult simulate_single_reader(const MachineConfig& machine,
                                  const SimWorkload& workload,
                                  std::uint64_t n_procs) {
  SENKF_REQUIRE(n_procs > 0, "simulate_single_reader: need processors");
  sim::Simulation sim;
  pfs::Pfs storage(sim, machine.pfs);
  net::Net network(machine.net);

  auto reader = [&]() -> sim::Task {
    for (std::uint64_t f = 0; f < workload.members; ++f) {
      // Whole contiguous file: one addressing operation.
      co_await storage.read(f, 1, workload.member_bytes());
      // Serial scatter of the per-processor pieces (§3.1's L-EnKF defect).
      const double piece = workload.member_bytes() /
                           static_cast<double>(n_procs);
      co_await sim.delay(network.serialized_sends_time(
          static_cast<int>(n_procs - 1), piece));
    }
  };
  sim.spawn(reader());
  sim.run();

  ReadResult result;
  result.makespan = sim.now();
  result.queued_time = storage.total_queued_time();
  result.requests = workload.members;
  return result;
}

ReadResult simulate_concurrent_read(const MachineConfig& machine,
                                    const SimWorkload& workload,
                                    std::uint64_t n_sdy, std::uint64_t n_cg) {
  require_divisible(workload.ny, n_sdy,
                    "concurrent read: ny must be a multiple of n_sdy");
  require_divisible(workload.members, n_cg,
                    "concurrent read: N must be a multiple of n_cg");
  sim::Simulation sim;
  pfs::Pfs storage(sim, machine.pfs);
  const double bar_bytes = workload.bar_bytes(n_sdy);

  // Group g owns files {f : f ≡ g (mod n_cg)} — interleaved assignment so
  // groups map onto the round-robin file placement (§4.1.3).
  auto reader = [&](std::uint64_t group, std::uint64_t) -> sim::Task {
    for (std::uint64_t f = group; f < workload.members; f += n_cg) {
      co_await storage.read(f, 1, bar_bytes);  // contiguous bar: one seek
    }
  };
  for (std::uint64_t g = 0; g < n_cg; ++g) {
    for (std::uint64_t j = 0; j < n_sdy; ++j) sim.spawn(reader(g, j));
  }
  sim.run();

  ReadResult result;
  result.makespan = sim.now();
  result.queued_time = storage.total_queued_time();
  result.requests = n_cg * n_sdy * (workload.members / n_cg);
  return result;
}

ReadResult simulate_read_plan(const MachineConfig& machine,
                              const io::ReadPlan& plan) {
  SENKF_REQUIRE(!plan.readers.empty(), "simulate_read_plan: empty plan");
  sim::Simulation sim;
  pfs::Pfs storage(sim, machine.pfs);

  auto reader = [&](const io::ReaderSchedule& schedule) -> sim::Task {
    for (const io::ReadOp& op : schedule.ops) {
      co_await storage.read(op.member, op.segments, op.bytes);
    }
  };
  for (const auto& schedule : plan.readers) sim.spawn(reader(schedule));
  sim.run();

  ReadResult result;
  result.makespan = sim.now();
  result.queued_time = storage.total_queued_time();
  result.requests = plan.total_ops();
  return result;
}

PenkfResult simulate_penkf(const MachineConfig& machine,
                           const SimWorkload& workload, std::uint64_t n_sdx,
                           std::uint64_t n_sdy) {
  validate_grid_split(workload, n_sdx, n_sdy);
  sim::Simulation sim;
  pfs::Pfs storage(sim, machine.pfs);

  const std::uint64_t segments = workload.ny / n_sdy;
  const double block_bytes =
      workload.member_bytes() / static_cast<double>(n_sdx * n_sdy);
  const std::uint64_t n_procs = n_sdx * n_sdy;
  const double points_per_subdomain =
      static_cast<double>(workload.nx / n_sdx) *
      static_cast<double>(workload.ny / n_sdy);
  const double compute = machine.update_cost_per_point_s *
                         points_per_subdomain;

  // Strictly phased per processor: obtain all local data, then update.
  auto proc = [&]() -> sim::Task {
    for (std::uint64_t f = 0; f < workload.members; ++f) {
      co_await storage.read(f, segments, block_bytes);
    }
    co_await sim.delay(compute);
  };
  for (std::uint64_t p = 0; p < n_procs; ++p) sim.spawn(proc());
  sim.run();

  PenkfResult result;
  result.makespan = sim.now();
  result.compute_time = compute;
  result.read_time = result.makespan - compute;
  result.io_fraction = result.read_time / result.makespan;
  return result;
}

PenkfResult simulate_lenkf(const MachineConfig& machine,
                           const SimWorkload& workload, std::uint64_t n_sdx,
                           std::uint64_t n_sdy) {
  validate_grid_split(workload, n_sdx, n_sdy);
  // Data obtaining is fully serialized behind the single reader, so the
  // computation phase starts for everyone when the last scatter ends.
  const ReadResult reading =
      simulate_single_reader(machine, workload, n_sdx * n_sdy);
  const double compute = machine.update_cost_per_point_s *
                         static_cast<double>(workload.nx / n_sdx) *
                         static_cast<double>(workload.ny / n_sdy);
  PenkfResult result;
  result.read_time = reading.makespan;
  result.compute_time = compute;
  result.makespan = reading.makespan + compute;
  result.io_fraction = result.read_time / result.makespan;
  return result;
}

namespace {

/// Shared fabric of one simulated S-EnKF run.
struct SenkfFabric {
  SenkfFabric(const MachineConfig& machine, const SimWorkload& workload,
              const SenkfParams& params, bool with_compute)
      : storage(sim, machine.pfs),
        network(machine.net),
        p(params),
        compute_enabled(with_compute) {
    const std::uint64_t rows_per_stage =
        workload.rows_per_stage(p.n_sdy, p.layers);
    stage_rows = rows_per_stage + 2 * workload.halo_eta;
    stage_bar_bytes = static_cast<double>(stage_rows) *
                      static_cast<double>(workload.nx) *
                      workload.point_bytes();
    const double block_cols = static_cast<double>(workload.nx / p.n_sdx) +
                              2.0 * static_cast<double>(workload.halo_xi);
    message_bytes = static_cast<double>(stage_rows) * block_cols *
                    workload.point_bytes() *
                    static_cast<double>(workload.members / p.n_cg);
    compute_per_stage = machine.update_cost_per_point_s *
                        static_cast<double>(workload.nx / p.n_sdx) *
                        static_cast<double>(rows_per_stage);

    for (std::uint64_t l = 0; l < p.layers; ++l) {
      compute_done.push_back(std::make_unique<sim::WaitGroup>(sim));
      compute_done.back()->add(static_cast<int>(p.n_sdy));
    }
    arrivals.reserve(p.n_sdy * p.layers);
    for (std::uint64_t i = 0; i < p.n_sdy * p.layers; ++i) {
      arrivals.push_back(std::make_unique<sim::WaitGroup>(sim));
      arrivals.back()->add(static_cast<int>(p.n_cg));
    }
  }

  sim::WaitGroup& arrival(std::uint64_t row, std::uint64_t stage) {
    return *arrivals[row * p.layers + stage];
  }

  sim::Simulation sim;
  pfs::Pfs storage;
  net::Net network;
  SenkfParams p;
  bool compute_enabled;

  std::uint64_t stage_rows = 0;
  double stage_bar_bytes = 0.0;
  double message_bytes = 0.0;
  double compute_per_stage = 0.0;

  std::vector<std::unique_ptr<sim::WaitGroup>> compute_done;
  std::vector<std::unique_ptr<sim::WaitGroup>> arrivals;

  // Accumulators (sums over actors; divided into means afterwards).
  double io_read_service = 0.0;
  double io_queued = 0.0;
  double io_comm = 0.0;
  double io_wait = 0.0;
  double io_end = 0.0;
  double comp_wait = 0.0;
  double prologue_max = 0.0;
  double first_compute_start = -1.0;
  double comp_end = 0.0;
};

sim::Task senkf_io_proc(SenkfFabric& f, const SimWorkload& workload,
                        std::uint64_t group, std::uint64_t row) {
  const double service_per_file =
      f.storage.ost(0).service_time(1, f.stage_bar_bytes);
  for (std::uint64_t l = 0; l < f.p.layers; ++l) {
    // Flow control: stay exactly one stage ahead of the computation
    // (Fig. 8's pipeline) — reading stage l may start once stage l−2 has
    // been consumed.
    if (f.compute_enabled && l >= 2) {
      const double t0 = f.sim.now();
      co_await f.compute_done[l - 2]->wait();
      f.io_wait += f.sim.now() - t0;
    }
    for (std::uint64_t file = group; file < workload.members;
         file += f.p.n_cg) {
      const double t0 = f.sim.now();
      co_await f.storage.read(file, 1, f.stage_bar_bytes);
      const double elapsed = f.sim.now() - t0;
      f.io_read_service += service_per_file;
      f.io_queued += elapsed - service_per_file;
    }
    // One aggregated block message per computation processor in this row
    // (single-port sender serialization, eq. (8)'s n_sdx factor).
    const double comm = f.network.serialized_sends_time(
        static_cast<int>(f.p.n_sdx), f.message_bytes);
    co_await f.sim.delay(comm);
    f.io_comm += comm;
    f.arrival(row, l).done();
  }
  f.io_end = std::max(f.io_end, f.sim.now());
}

sim::Task senkf_comp_row(SenkfFabric& f, std::uint64_t row) {
  for (std::uint64_t l = 0; l < f.p.layers; ++l) {
    const double t0 = f.sim.now();
    co_await f.arrival(row, l).wait();
    const double waited = f.sim.now() - t0;
    f.comp_wait += waited;
    if (l == 0) {
      f.prologue_max = std::max(f.prologue_max, f.sim.now());
      if (f.first_compute_start < 0.0 || f.sim.now() < f.first_compute_start) {
        f.first_compute_start = f.sim.now();
      }
    }
    co_await f.sim.delay(f.compute_per_stage);
    f.compute_done[l]->done();
  }
  f.comp_end = std::max(f.comp_end, f.sim.now());
}

}  // namespace

SenkfResult simulate_senkf(const MachineConfig& machine,
                           const SimWorkload& workload,
                           const SenkfParams& params) {
  validate_grid_split(workload, params.n_sdx, params.n_sdy);
  require_divisible(workload.ny / params.n_sdy, params.layers,
                    "senkf: L must divide the sub-domain row count");
  require_divisible(workload.members, params.n_cg,
                    "senkf: N must be a multiple of n_cg");

  SenkfFabric fabric(machine, workload, params, /*with_compute=*/true);
  for (std::uint64_t g = 0; g < params.n_cg; ++g) {
    for (std::uint64_t j = 0; j < params.n_sdy; ++j) {
      fabric.sim.spawn(senkf_io_proc(fabric, workload, g, j));
    }
  }
  for (std::uint64_t j = 0; j < params.n_sdy; ++j) {
    fabric.sim.spawn(senkf_comp_row(fabric, j));
  }
  fabric.sim.run();

  SenkfResult result;
  result.makespan = fabric.sim.now();
  const double io_count = static_cast<double>(params.io_processors());
  result.io_read = fabric.io_read_service / io_count;
  result.io_queued = fabric.io_queued / io_count;
  result.io_comm = fabric.io_comm / io_count;
  result.io_wait = fabric.io_wait / io_count;
  // Each row coroutine stands for n_sdx identical processors, so row
  // means are processor means.
  const double rows = static_cast<double>(params.n_sdy);
  result.compute = fabric.compute_per_stage *
                   static_cast<double>(params.layers);
  result.comp_wait = fabric.comp_wait / rows;
  result.prologue = fabric.prologue_max;
  const double overlap_window =
      std::min(fabric.io_end, fabric.comp_end) - fabric.first_compute_start;
  result.overlap_fraction =
      std::clamp(overlap_window / result.makespan, 0.0, 1.0);
  return result;
}

double simulate_read_and_comm(const MachineConfig& machine,
                              const SimWorkload& workload,
                              const SenkfParams& params) {
  validate_grid_split(workload, params.n_sdx, params.n_sdy);
  require_divisible(workload.ny / params.n_sdy, params.layers,
                    "read_and_comm: L must divide the sub-domain row count");
  require_divisible(workload.members, params.n_cg,
                    "read_and_comm: N must be a multiple of n_cg");

  // One stage only: T₁ is the per-stage read + communication cost.
  SenkfParams one_stage = params;
  one_stage.layers = 1;
  SenkfFabric fabric(machine, workload, one_stage, /*with_compute=*/false);
  // Per-stage geometry must match the original L (a stage is 1/L of the
  // sub-domain), so rebuild the stage sizes from the caller's params.
  const std::uint64_t rows_per_stage =
      workload.rows_per_stage(params.n_sdy, params.layers);
  fabric.stage_rows = rows_per_stage + 2 * workload.halo_eta;
  fabric.stage_bar_bytes = static_cast<double>(fabric.stage_rows) *
                           static_cast<double>(workload.nx) *
                           workload.point_bytes();
  const double block_cols = static_cast<double>(workload.nx / params.n_sdx) +
                            2.0 * static_cast<double>(workload.halo_xi);
  fabric.message_bytes = static_cast<double>(fabric.stage_rows) * block_cols *
                         workload.point_bytes() *
                         static_cast<double>(workload.members / params.n_cg);

  for (std::uint64_t g = 0; g < params.n_cg; ++g) {
    for (std::uint64_t j = 0; j < params.n_sdy; ++j) {
      fabric.sim.spawn(senkf_io_proc(fabric, workload, g, j));
    }
  }
  // Consume arrivals so WaitGroups retire (no compute delay).
  for (std::uint64_t j = 0; j < params.n_sdy; ++j) {
    fabric.sim.spawn([](SenkfFabric& f, std::uint64_t row) -> sim::Task {
      for (std::uint64_t l = 0; l < f.p.layers; ++l) {
        co_await f.arrival(row, l).wait();
      }
    }(fabric, j));
  }
  fabric.sim.run();
  return fabric.sim.now();
}

}  // namespace senkf::vcluster
