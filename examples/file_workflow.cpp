// End-to-end file-based workflow: the production path.
//
//   $ file_workflow [nx=96] [ny=48] [members=12] [stations=400]
//                   [dir=<tmp>/senkf_workflow] [keep=0]
//
// 1. generate a synthetic background ensemble and observation network,
// 2. persist both to disk (binary member files + .senkfobs),
// 3. reopen everything from disk — as a downstream system would,
// 4. quality-control the observations against the background,
// 5. assimilate with S-EnKF reading members straight from the files,
// 6. write the analysis ensemble back to disk and verify it re-loads.
#include <filesystem>
#include <iostream>

#include "enkf/diagnostics.hpp"
#include "enkf/file_store.hpp"
#include "enkf/senkf.hpp"
#include "enkf/verification.hpp"
#include "obs/obs_io.hpp"
#include "obs/perturbed.hpp"
#include "obs/quality_control.hpp"
#include "support/config.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace senkf;
  namespace fs = std::filesystem;
  const Config config = Config::from_args(argc, argv);
  const grid::Index nx = config.get_int("nx", 96);
  const grid::Index ny = config.get_int("ny", 48);
  const grid::Index members = config.get_int("members", 12);
  const grid::Index stations = config.get_int("stations", 400);
  const fs::path dir = config.get_string(
      "dir", (fs::temp_directory_path() / "senkf_workflow").string());

  // --- 1. generate --------------------------------------------------------
  const grid::LatLonGrid mesh(nx, ny);
  Rng rng(41);
  const auto scenario = grid::synthetic_ensemble(mesh, members, rng, 0.5);
  obs::NetworkOptions net;
  net.station_count = stations;
  net.error_std = 0.05;
  Rng obs_rng(42);
  const auto observations =
      obs::random_network(mesh, scenario.truth, obs_rng, net);

  // --- 2. persist ---------------------------------------------------------
  fs::create_directories(dir / "background");
  (void)enkf::write_ensemble(mesh, scenario.members, dir / "background");
  obs::write_observations(observations, dir / "observations.senkfobs");
  std::cout << "Wrote " << members << " member files and "
            << observations.size() << " observations under " << dir << "\n";

  // --- 3. reopen from disk ------------------------------------------------
  const enkf::FileEnsembleStore store(mesh, dir / "background", members);
  const auto loaded_obs =
      obs::read_observations(mesh, dir / "observations.senkfobs");

  // --- 4. quality control -------------------------------------------------
  std::vector<grid::Field> background;
  for (grid::Index k = 0; k < members; ++k) {
    background.push_back(store.load_member(k));
  }
  const auto qc = obs::background_check(loaded_obs, background);
  std::cout << "Quality control: " << qc.accepted.size() << " accepted, "
            << qc.rejected.size() << " rejected\n";

  // --- 5. assimilate from files ------------------------------------------
  const auto ys =
      obs::perturbed_observations(qc.accepted, members, Rng(43));
  enkf::SenkfConfig senkf_config;
  senkf_config.n_sdx = 4;
  senkf_config.n_sdy = 2;
  senkf_config.layers = 2;
  senkf_config.n_cg = 2;
  senkf_config.analysis.halo = grid::halo_for_radius(mesh, 40.0);
  store.reset_counters();
  const auto analysis = enkf::senkf(store, qc.accepted, ys, senkf_config);

  // --- 6. write the analysis and verify ------------------------------------
  fs::create_directories(dir / "analysis");
  const auto analysis_store =
      enkf::write_ensemble(mesh, analysis, dir / "analysis");
  double reload_diff = 0.0;
  for (grid::Index k = 0; k < members; ++k) {
    const grid::Field reloaded = analysis_store.load_member(k);
    for (grid::Index i = 0; i < reloaded.size(); ++i) {
      reload_diff =
          std::max(reload_diff, std::abs(reloaded[i] - analysis[k][i]));
    }
  }

  Table table({"quantity", "background", "analysis"});
  table.add_row({"ensemble-mean RMSE vs truth",
                 Table::num(enkf::mean_field_rmse(background,
                                                  scenario.truth),
                            4),
                 Table::num(enkf::mean_field_rmse(analysis, scenario.truth),
                            4)});
  table.add_row(
      {"innovation chi2/m (held-in obs)",
       Table::num(enkf::innovation_statistics(background, qc.accepted)
                      .normalized(),
                  2),
       Table::num(enkf::innovation_statistics(analysis, qc.accepted)
                      .normalized(),
                  2)});
  table.print(std::cout, "File-based workflow results");
  std::cout << "Disk segments touched during assimilation: "
            << store.segments_touched() << "\n";
  std::cout << "Analysis write-read round-trip max difference: "
            << reload_diff << " (must be 0)\n";

  if (!config.get_bool("keep", false)) fs::remove_all(dir);
  return 0;
}
