// Auto-tune planner: size an S-EnKF run for a machine before buying time.
//
//   $ autotune_planner [procs=12000] [nx=3600] [ny=1800] [members=120]
//                      [epsilon=1e-5] [osts=6] [stream_mbps=400]
//                      [update_cost_us=1000]
//
// Feeds the machine description into the §4.3 cost model, runs the
// Algorithm 2 auto-tuner, prints the recommended parameters with the
// modelled phase costs, and cross-checks the prediction against the
// discrete-event simulator.
#include <iostream>

#include "support/config.hpp"
#include "support/table.hpp"
#include "tuning/auto_tune.hpp"

int main(int argc, char** argv) {
  using namespace senkf;
  const Config config = Config::from_args(argc, argv);
  const std::uint64_t procs = config.get_int("procs", 12000);
  const double epsilon = config.get_double("epsilon", 1e-5);

  vcluster::SimWorkload workload;
  workload.nx = config.get_int("nx", 3600);
  workload.ny = config.get_int("ny", 1800);
  workload.members = config.get_int("members", 120);

  vcluster::MachineConfig machine;
  machine.pfs.ost_count = static_cast<int>(config.get_int("osts", 6));
  machine.pfs.ost.stream_bandwidth =
      config.get_double("stream_mbps", 400.0) * 1e6;
  machine.update_cost_per_point_s =
      config.get_double("update_cost_us", 1000.0) * 1e-6;

  const tuning::CostModel model(tuning::params_from(machine, workload));
  const auto tuned = tuning::auto_tune(model, procs, epsilon);

  Table plan({"parameter", "value"});
  plan.add_row({"processor budget", Table::num(static_cast<long long>(procs))});
  plan.add_row({"n_sdx", Table::num(static_cast<long long>(tuned.params.n_sdx))});
  plan.add_row({"n_sdy", Table::num(static_cast<long long>(tuned.params.n_sdy))});
  plan.add_row({"L (layers)", Table::num(static_cast<long long>(tuned.params.layers))});
  plan.add_row({"n_cg (concurrent groups)",
                Table::num(static_cast<long long>(tuned.params.n_cg))});
  plan.add_row({"C2 computation processors",
                Table::num(static_cast<long long>(tuned.c2))});
  plan.add_row({"C1 I/O processors",
                Table::num(static_cast<long long>(tuned.c1))});
  plan.add_row({"idle processors",
                Table::num(static_cast<long long>(procs - tuned.c1 -
                                                  tuned.c2))});
  plan.print(std::cout, "Algorithm 2 recommendation");

  Table phases({"phase (per stage)", "model_s"});
  phases.add_row({"T_read (eq. 7)", Table::num(model.t_read(tuned.params), 4)});
  phases.add_row({"T_comm (eq. 8)", Table::num(model.t_comm(tuned.params), 4)});
  phases.add_row({"T_comp (eq. 9)", Table::num(model.t_comp(tuned.params), 4)});
  phases.add_row({"T_total (pipeline)", Table::num(tuned.t_total, 4)});
  phases.print(std::cout, "Modelled phase costs");

  const auto simulated =
      vcluster::simulate_senkf(machine, workload, tuned.params);
  std::cout << "DES cross-check: simulated total "
            << Table::num(simulated.makespan, 4) << " s vs modelled "
            << Table::num(tuned.t_total, 4) << " s (overlap "
            << Table::percent(simulated.overlap_fraction) << ", prologue "
            << Table::num(simulated.prologue, 4) << " s)\n";
  return 0;
}
