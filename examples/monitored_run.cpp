// Live observability walkthrough (DESIGN.md §11): run S-EnKF with an
// injected straggler so rank 0's in-band monitor WARNs in real time,
// then print the cross-rank aggregation — per-rank phase table, read
// skew, helper-thread backlog — and the measured-vs-model drift table.
//
// The same data lands on disk with zero code changes on any binary:
//   SENKF_REPORT=report.json ./monitored_run   # machine-readable report
//   SENKF_SKEW_WARN=4        ./monitored_run   # raise the WARN threshold
//   SENKF_SKEW_WARN=off      ./monitored_run   # silence the monitor
//   SENKF_FAULTS="straggler=0:0.03" ./monitored_run   # pick the delay
//   SENKF_SAMPLE_MS=5        ./monitored_run   # continuous sampling
//   SENKF_TRACE=trace.json   ./monitored_run   # flow-event trace export
#include <cstdio>
#include <iostream>
#include <optional>

#include "enkf/faulty_store.hpp"
#include "enkf/senkf.hpp"
#include "grid/synthetic.hpp"
#include "obs/perturbed.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"
#include "tuning/drift.hpp"

int main() {
  using namespace senkf;

  const grid::LatLonGrid g{48, 24};
  constexpr grid::Index kMembers = 8;
  senkf::Rng rng(51);
  const auto scenario = grid::synthetic_ensemble(g, kMembers, rng, 0.5);
  senkf::Rng obs_rng(52);
  obs::NetworkOptions network;
  network.station_count = 80;
  network.error_std = 0.05;
  const auto observations =
      obs::random_network(g, scenario.truth, obs_rng, network);
  const auto ys =
      obs::perturbed_observations(observations, kMembers, senkf::Rng(53));
  const enkf::MemoryEnsembleStore store(g, scenario.members);

  enkf::SenkfConfig config;
  config.n_sdx = 4;
  config.n_sdy = 2;
  config.layers = 3;
  config.n_cg = 2;
  config.analysis.halo = grid::Halo{2, 1};

  // Default demo: I/O rank ordinal 0 pays 20 ms per bar read, so every
  // stage's read skew trips the monitor while the run executes — watch
  // for "read straggler" WARN lines interleaved with this output.
  // SENKF_FAULTS (when set) overrides the demo plan.
  std::optional<pfs::FaultPlan> faults = pfs::fault_plan_from_env();
  if (!faults.has_value()) faults = pfs::parse_fault_plan("straggler=0:0.02");
  std::cout << "Injecting faults: " << pfs::to_spec(*faults) << "\n";
  const enkf::FaultyEnsembleStore faulty(store, *faults);

  // Arm tracing so the run computes its critical-path attribution even
  // without SENKF_TRACE (the export still needs the env var).
  telemetry::set_tracing_enabled(true);

  enkf::SenkfStats stats;
  const auto analysis = enkf::senkf(faulty, observations, ys, config, &stats);
  std::cout << "\nAnalysis members: " << analysis.size() << "\n\n";

  // Per-rank phase table straight from the aggregation tree.
  std::printf("%5s %5s %5s %9s %9s %9s %9s %9s %8s\n", "rank", "io", "grp",
              "read_s", "obtain_s", "send_s", "wait_s", "update_s", "msgs");
  for (const auto& r : stats.ranks) {
    std::printf("%5d %5d %5d %9.4f %9.4f %9.4f %9.4f %9.4f %8llu\n", r.rank,
                static_cast<int>(r.is_io), r.group, r.read_s, r.obtain_s,
                r.send_s, r.wait_s, r.update_s,
                static_cast<unsigned long long>(r.messages));
  }

  std::cout << "\nStraggler WARNs raised: " << stats.straggler_warns
            << "\nWhole-run read skew (slowest/mean): " << stats.read_skew
            << "\n";

  // Drift table: measured per-rank per-stage phase seconds vs the
  // uncalibrated cost model (eqs. (7)-(9)); large values are expected —
  // the gap *is* the recalibration signal an auto-tuning loop would use.
  const telemetry::RunReport report = telemetry::run_report_copy();
  std::cout << "\nModel drift (measured vs eqs. (7)-(9), relative):\n";
  for (const auto& [phase, rel] : report.drift) {
    const tuning::DriftTrend trend = tuning::drift_trend(phase);
    std::printf("  %-5s %+9.3f   trend: %zu pts, mean %+.1f, slope %+.2f/s\n",
                phase.c_str(), rel, trend.points, trend.mean,
                trend.slope_per_s);
  }

  // Critical-path attribution (DESIGN.md §13): where this cycle's wall
  // clock actually went, walked backward through waits and message edges.
  std::cout << "\nCritical path per cycle:\n";
  for (const auto& cp : telemetry::critical_paths_copy()) {
    std::printf(
        "  cycle %llu: wall %.4fs = compute %.4f + disk %.4f + "
        "comm-blocked %.4f + other %.4f + untracked %.4f  (%llu hops, "
        "%llu missing edges)\n",
        static_cast<unsigned long long>(cp.cycle), cp.wall_s, cp.compute_s,
        cp.disk_s, cp.comm_blocked_s, cp.other_s, cp.untracked_s,
        static_cast<unsigned long long>(cp.message_hops),
        static_cast<unsigned long long>(cp.missing_edges));
    for (const auto& c : cp.top) {
      std::printf("    rank %2d  %-16s %9.4fs\n", c.rank, c.phase.c_str(),
                  c.seconds);
    }
  }

  std::cout << "\nMonitor gauges:\n  senkf.skew.stage_read = "
            << telemetry::Registry::global().gauge_value("senkf.skew.stage_read")
            << " (milli-ratio)\n  senkf.straggler.last_rank = "
            << telemetry::Registry::global().gauge_value(
                   "senkf.straggler.last_rank")
            << "\n";
  if (telemetry::report_export_path().empty()) {
    std::cout << "\nSet SENKF_REPORT=report.json to export all of the above "
                 "as versioned JSON.\n";
  }
  return 0;
}
