// Cycled sequential assimilation: the operational loop EnKF exists for.
//
//   $ cycled_assimilation [nx=72] [ny=36] [members=10] [cycles=12]
//                         [steps=4] [stations=150] [inflation=1.05]
//                         [seed=3]
//
// A hidden truth evolves under 2-D advection-diffusion; every cycle the
// ensemble forecasts forward, a fresh observation network measures the
// truth, and S-EnKF folds the observations in.  A free-running ensemble
// (never assimilated) is the control.  Watch the assimilated RMSE stay
// bounded while the free run drifts.
#include <iostream>

#include "enkf/cycle.hpp"
#include "enkf/diagnostics.hpp"
#include "grid/synthetic.hpp"
#include "support/config.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace senkf;
  const Config config = Config::from_args(argc, argv);
  const grid::Index nx = config.get_int("nx", 72);
  const grid::Index ny = config.get_int("ny", 36);
  const grid::Index members = config.get_int("members", 10);
  const std::uint64_t seed = config.get_int("seed", 3);

  const grid::LatLonGrid mesh(nx, ny);
  Rng rng(seed);
  const auto scenario = grid::synthetic_ensemble(mesh, members, rng, 0.5);

  model::AdvectionDiffusionConfig flow;
  flow.u = 0.8;
  flow.v = 0.1;
  flow.diffusion = 0.02;
  const model::AdvectionDiffusion dynamics(mesh, flow);

  enkf::CycleConfig cycle;
  cycle.cycles = config.get_int("cycles", 12);
  cycle.steps_per_cycle = config.get_int("steps", 4);
  cycle.seed = seed + 100;
  cycle.network.station_count = config.get_int("stations", 150);
  cycle.network.error_std = 0.05;
  cycle.assimilation.n_sdx = 4;
  cycle.assimilation.n_sdy = 2;
  cycle.assimilation.layers = 2;
  cycle.assimilation.n_cg = 2;
  cycle.assimilation.analysis.halo = grid::halo_for_radius(mesh, 40.0);
  cycle.assimilation.analysis.inflation =
      config.get_double("inflation", 1.05);

  const auto result = enkf::run_cycled_assimilation(
      dynamics, scenario.truth, scenario.members, cycle);

  Table table({"cycle", "background_rmse", "analysis_rmse", "free_run_rmse",
               "spread", "innovation_chi2/m"});
  for (std::size_t t = 0; t < result.records.size(); ++t) {
    const auto& r = result.records[t];
    table.add_row({Table::num(static_cast<long long>(t + 1)),
                   Table::num(r.background_rmse, 4),
                   Table::num(r.analysis_rmse, 4),
                   Table::num(r.free_rmse, 4), Table::num(r.spread, 4),
                   Table::num(r.innovation_chi2, 2)});
  }
  table.print(std::cout, "Cycled assimilation (" + std::to_string(nx) + "x" +
                             std::to_string(ny) + ", " +
                             std::to_string(members) + " members, inflation " +
                             Table::num(cycle.assimilation.analysis.inflation,
                                        2) +
                             ")");
  std::cout << "Expected: analysis RMSE bounded well below the free run; "
               "inflation keeps the spread from collapsing.\n";
  return 0;
}
