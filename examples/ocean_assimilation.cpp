// Ocean reanalysis scenario: the paper's §5 workload, scaled to a laptop.
//
//   $ ocean_assimilation [nx=180] [ny=90] [members=16] [stations=800]
//                        [radius_km=60] [seed=7] [layers=3] [use_files=0]
//
// With use_files=1 the background ensemble is written to real binary
// files under a temp directory and every implementation reads it from
// disk through FileEnsembleStore — real seeks, identical results.
//
// A 2° stand-in for the 0.1° ocean mesh: correlated truth, background
// ensemble from "long model integration" statistics, sparse in-situ
// network (mix of point moorings and bilinear-interpolated drifters).
// Runs all four implementations — the serial reference, the L-EnKF and
// P-EnKF baselines and S-EnKF — verifies they produce the same analysis,
// and reports skill, wall time and the disk access patterns.
#include <filesystem>
#include <iostream>
#include <memory>

#include "enkf/diagnostics.hpp"
#include "enkf/file_store.hpp"
#include "enkf/lenkf.hpp"
#include "enkf/penkf.hpp"
#include "enkf/senkf.hpp"
#include "obs/perturbed.hpp"
#include "support/config.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace senkf;
  const Config config = Config::from_args(argc, argv);
  const grid::Index nx = config.get_int("nx", 180);
  const grid::Index ny = config.get_int("ny", 90);
  const grid::Index members = config.get_int("members", 16);
  const grid::Index stations = config.get_int("stations", 800);
  const double radius_km = config.get_double("radius_km", 60.0);
  const std::uint64_t seed = config.get_int("seed", 7);
  const grid::Index layers = config.get_int("layers", 3);

  // 0.1° would be ~11 km spacing; the scaled mesh keeps the anisotropy.
  const grid::LatLonGrid mesh(nx, ny, 22.0, 22.0);
  Rng rng(seed);
  grid::SyntheticFieldOptions field_opt;
  field_opt.correlation_length_km = 600.0;
  field_opt.amplitude = 1.0;
  field_opt.mean = 15.0;  // sea-surface-temperature-like
  const auto scenario =
      grid::synthetic_ensemble(mesh, members, rng, 0.4, field_opt);

  obs::NetworkOptions net;
  net.station_count = stations;
  net.error_std = 0.08;
  net.bilinear = true;  // drifting platforms interpolate between points
  Rng obs_rng(seed + 1);
  const auto observations =
      obs::random_network(mesh, scenario.truth, obs_rng, net);
  const auto ys =
      obs::perturbed_observations(observations, members, Rng(seed + 2));

  // Either an in-memory store or real files on disk — the implementations
  // are backend-agnostic and produce identical results.
  const bool use_files = config.get_bool("use_files", false);
  std::unique_ptr<enkf::EnsembleStore> owned_store;
  std::filesystem::path ensemble_dir;
  if (use_files) {
    ensemble_dir = std::filesystem::temp_directory_path() /
                   "senkf_ocean_ensemble";
    owned_store = std::make_unique<enkf::FileEnsembleStore>(
        enkf::write_ensemble(mesh, scenario.members, ensemble_dir));
    std::cout << "Reading ensemble from real files under " << ensemble_dir
              << "\n";
  } else {
    owned_store = std::make_unique<enkf::MemoryEnsembleStore>(
        mesh, scenario.members);
  }
  const enkf::EnsembleStore& store = *owned_store;

  enkf::EnkfRunConfig run;
  run.n_sdx = 6;
  run.n_sdy = 3;
  run.layers = layers;
  run.analysis.halo = grid::halo_for_radius(mesh, radius_km);

  enkf::SenkfConfig senkf_run;
  senkf_run.n_sdx = run.n_sdx;
  senkf_run.n_sdy = run.n_sdy;
  senkf_run.layers = layers;
  senkf_run.n_cg = 4;
  senkf_run.analysis = run.analysis;

  Table table({"implementation", "wall_s", "mean RMSE", "spread",
               "disk_segments"});
  const double rmse_before =
      enkf::mean_field_rmse(scenario.members, scenario.truth);

  const auto report = [&](const char* name,
                          const std::vector<grid::Field>& analysis,
                          double seconds, std::uint64_t segments) {
    table.add_row({name, Table::num(seconds, 3),
                   Table::num(enkf::mean_field_rmse(analysis,
                                                    scenario.truth),
                              4),
                   Table::num(enkf::ensemble_spread(analysis), 4),
                   Table::num(static_cast<long long>(segments))});
  };

  store.reset_counters();
  Stopwatch serial_watch;
  const auto gold = enkf::serial_enkf(store, observations, ys, run);
  report("serial reference", gold, serial_watch.elapsed_seconds(),
         store.segments_touched());

  store.reset_counters();
  Stopwatch lenkf_watch;
  const auto l = enkf::lenkf(store, observations, ys, run);
  report("L-EnKF (single reader)", l, lenkf_watch.elapsed_seconds(),
         store.segments_touched());

  store.reset_counters();
  Stopwatch penkf_watch;
  const auto p = enkf::penkf(store, observations, ys, run);
  report("P-EnKF (block reading)", p, penkf_watch.elapsed_seconds(),
         store.segments_touched());

  store.reset_counters();
  Stopwatch senkf_watch;
  const auto s = enkf::senkf(store, observations, ys, senkf_run);
  report("S-EnKF (multi-stage)", s, senkf_watch.elapsed_seconds(),
         store.segments_touched());

  // The deterministic ensemble-transform scheme, for comparison (the
  // formulation the L-EnKF literature uses; perturbed obs are ignored).
  enkf::SenkfConfig transform_run = senkf_run;
  transform_run.analysis.kind = enkf::AnalysisKind::kDeterministicTransform;
  store.reset_counters();
  Stopwatch transform_watch;
  const auto t = enkf::senkf(store, observations, ys, transform_run);
  report("S-EnKF (deterministic transform)", t,
         transform_watch.elapsed_seconds(), store.segments_touched());

  table.print(std::cout, "Ocean assimilation (" + std::to_string(nx) + "x" +
                             std::to_string(ny) + ", N=" +
                             std::to_string(members) + ", m=" +
                             std::to_string(observations.size()) +
                             ", background mean RMSE " +
                             Table::num(rmse_before, 4) + ")");

  std::cout << "Cross-implementation agreement (max |difference|):\n"
            << "  L-EnKF vs serial: "
            << enkf::max_ensemble_difference(gold, l) << "\n"
            << "  P-EnKF vs serial: "
            << enkf::max_ensemble_difference(gold, p) << "\n"
            << "  S-EnKF vs serial: "
            << enkf::max_ensemble_difference(gold, s) << "\n";
  std::cout << "(all must be exactly 0 — same kernel, same localization, "
               "same perturbed observations)\n";
  return 0;
}
