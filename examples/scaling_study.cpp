// Scaling study: sweep processor counts on the simulated cluster.
//
//   $ scaling_study [nx=3600] [ny=1800] [members=120] [from=1000]
//                   [to=12000] [points=6] [epsilon=1e-5]
//
// For each processor count: P-EnKF (block reading, phased) vs auto-tuned
// S-EnKF on the discrete-event simulator — a configurable version of the
// paper's Figure 13 study for exploring other workloads and machines.
#include <iostream>
#include <vector>

#include "support/config.hpp"
#include "support/table.hpp"
#include "tuning/auto_tune.hpp"

namespace {

// Largest feasible P-EnKF decomposition not exceeding `procs` with
// n_sdy = 10 bars (the paper's block-reading convention).
std::uint64_t feasible_sdx(std::uint64_t procs, std::uint64_t nx) {
  std::uint64_t best = 1;
  for (std::uint64_t sdx = 1; sdx * 10 <= procs; ++sdx) {
    if (nx % sdx == 0) best = sdx;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace senkf;
  const Config config = Config::from_args(argc, argv);
  vcluster::SimWorkload workload;
  workload.nx = config.get_int("nx", 3600);
  workload.ny = config.get_int("ny", 1800);
  workload.members = config.get_int("members", 120);
  workload.levels = config.get_int("levels", 1);
  const std::uint64_t from = config.get_int("from", 1000);
  const std::uint64_t to = config.get_int("to", 12000);
  const std::uint64_t points = config.get_int("points", 6);
  const double epsilon = config.get_double("epsilon", 1e-5);
  SENKF_REQUIRE(from >= 20 && to >= from && points >= 2,
                "scaling_study: need 20 <= from <= to and points >= 2");

  const vcluster::MachineConfig machine;
  const tuning::CostModel model(tuning::params_from(machine, workload));

  Table table({"processors", "lenkf_s", "penkf_s", "senkf_s", "speedup",
               "senkf_params (sdx,sdy,L,cg)"});
  for (std::uint64_t i = 0; i < points; ++i) {
    const std::uint64_t procs =
        from + (to - from) * i / (points - 1);
    const std::uint64_t sdx = feasible_sdx(procs, workload.nx);
    const auto l = vcluster::simulate_lenkf(machine, workload, sdx, 10);
    const auto p =
        vcluster::simulate_penkf(machine, workload, sdx, 10);
    const auto tuned = tuning::auto_tune(model, procs, epsilon);
    const auto s = vcluster::simulate_senkf(machine, workload, tuned.params);
    table.add_row({Table::num(static_cast<long long>(procs)),
                   Table::num(l.makespan), Table::num(p.makespan),
                   Table::num(s.makespan),
                   Table::num(p.makespan / s.makespan, 2),
                   std::to_string(tuned.params.n_sdx) + "," +
                       std::to_string(tuned.params.n_sdy) + "," +
                       std::to_string(tuned.params.layers) + "," +
                       std::to_string(tuned.params.n_cg)});
  }
  table.print(std::cout, "Strong scaling study (simulated cluster)");
  return 0;
}
