// Observability walkthrough: run a small S-EnKF assimilation with tracing
// armed, export the span record as Chrome trace JSON (load it in Perfetto
// or chrome://tracing), and dump the metrics registry snapshot.
//
// The same effect without code changes, on any senkf binary:
//   SENKF_TRACE=my_trace.json ./quickstart     # export at process exit
//   SENKF_LOG=debug           ./quickstart     # verbose stamped logging
//
// Fault injection rides the same zero-code-change rail: set SENKF_FAULTS
// (e.g. "seed=1,transient=0.05,burst=2" or "dead=3") and the run goes
// through a fault-injecting store — retries, re-issues and drops show up
// in the trace and under pfs.fault.* / senkf.read.* in the snapshot.
#include <iostream>
#include <optional>

#include "enkf/faulty_store.hpp"
#include "enkf/senkf.hpp"
#include "grid/synthetic.hpp"
#include "obs/perturbed.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

int main() {
  using namespace senkf;

  const grid::LatLonGrid g{48, 24};
  constexpr grid::Index kMembers = 8;
  senkf::Rng rng(31);
  const auto scenario = grid::synthetic_ensemble(g, kMembers, rng, 0.5);
  senkf::Rng obs_rng(32);
  obs::NetworkOptions network;
  network.station_count = 80;
  network.error_std = 0.05;
  const auto observations =
      obs::random_network(g, scenario.truth, obs_rng, network);
  const auto ys =
      obs::perturbed_observations(observations, kMembers, senkf::Rng(33));
  const enkf::MemoryEnsembleStore store(g, scenario.members);

  enkf::SenkfConfig config;
  config.n_sdx = 4;
  config.n_sdy = 2;
  config.layers = 3;
  config.n_cg = 2;
  config.analysis.halo = grid::Halo{2, 1};

  // SENKF_FAULTS (when set) wraps the store in the fault-injecting
  // decorator; the pipeline's retry/degrade machinery does the rest.
  const std::optional<pfs::FaultPlan> faults = pfs::fault_plan_from_env();
  std::optional<enkf::FaultyEnsembleStore> faulty;
  if (faults.has_value()) {
    std::cout << "Injecting faults: " << pfs::to_spec(*faults) << "\n";
    faulty.emplace(store, *faults);
  }
  const enkf::EnsembleStore& active =
      faulty.has_value() ? static_cast<const enkf::EnsembleStore&>(*faulty)
                         : store;

  // Arm tracing programmatically (equivalent to SENKF_TRACE=on).
  telemetry::set_tracing_enabled(true);

  enkf::SenkfStats stats;
  const auto analysis = senkf::enkf::senkf(active, observations, ys, config,
                                           &stats);
  telemetry::set_tracing_enabled(false);

  const std::string trace_path = "traced_run.json";
  telemetry::write_chrome_trace(trace_path);

  const auto events = telemetry::collect_events();
  std::cout << "S-EnKF finished: " << analysis.size() << " members, "
            << config.total_ranks() << " ranks, " << events.size()
            << " spans recorded.\n";
  std::cout << "Chrome trace written to " << trace_path
            << " (open in Perfetto / chrome://tracing).\n\n";

  std::cout << "Phase stats (telemetry-derived facade):\n"
            << "  io_read     " << stats.io_read_seconds << " s\n"
            << "  io_send     " << stats.io_send_seconds << " s\n"
            << "  comp_wait   " << stats.comp_wait_seconds << " s\n"
            << "  comp_update " << stats.comp_update_seconds << " s\n"
            << "  messages    " << stats.messages << "\n"
            << "  retries     " << stats.read_retries << "\n"
            << "  re-issued   " << stats.bars_reissued << "\n"
            << "  dropped     " << stats.dropped_members.size() << "\n\n";

  std::cout << "Metrics registry snapshot:\n"
            << telemetry::Registry::global().snapshot();
  return 0;
}
