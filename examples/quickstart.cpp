// Quickstart: assimilate synthetic observations with S-EnKF.
//
//   $ quickstart [nx=96] [ny=48] [members=12] [stations=300] [seed=42]
//
// Builds a synthetic ocean-like truth field, a background ensemble
// scattered around it, a random observation network — then runs the
// scalable EnKF (4×2 sub-domains, 2 layers, 2 concurrent groups) and
// reports how much closer the analysis mean is to the truth.
#include <iostream>

#include "enkf/diagnostics.hpp"
#include "enkf/senkf.hpp"
#include "obs/perturbed.hpp"
#include "support/config.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace senkf;
  const Config config = Config::from_args(argc, argv);
  const grid::Index nx = config.get_int("nx", 96);
  const grid::Index ny = config.get_int("ny", 48);
  const grid::Index members = config.get_int("members", 12);
  const grid::Index stations = config.get_int("stations", 300);
  const std::uint64_t seed = config.get_int("seed", 42);

  // 1. Synthetic scenario: truth + background ensemble (the stand-in for
  //    a long model integration; DESIGN.md section 2).
  const grid::LatLonGrid mesh(nx, ny);
  Rng rng(seed);
  const auto scenario = grid::synthetic_ensemble(mesh, members, rng, 0.5);

  // 2. Observation network measuring the truth with noise, plus the
  //    member-wise perturbed observations Ys.
  obs::NetworkOptions net;
  net.station_count = stations;
  net.error_std = 0.05;
  Rng obs_rng(seed + 1);
  const auto observations =
      obs::random_network(mesh, scenario.truth, obs_rng, net);
  const auto ys =
      obs::perturbed_observations(observations, members, Rng(seed + 2));

  // 3. S-EnKF: 4×2 sub-domains, L=2 layers, 2 concurrent I/O groups.
  const enkf::MemoryEnsembleStore store(mesh, scenario.members);
  enkf::SenkfConfig senkf_config;
  senkf_config.n_sdx = 4;
  senkf_config.n_sdy = 2;
  senkf_config.layers = 2;
  senkf_config.n_cg = 2;
  senkf_config.analysis.halo = grid::halo_for_radius(mesh, 40.0);

  enkf::SenkfStats stats;
  const auto analysis =
      enkf::senkf(store, observations, ys, senkf_config, &stats);

  // 4. Skill report.
  Table table({"quantity", "background", "analysis"});
  table.add_row({"ensemble-mean RMSE vs truth",
                 Table::num(enkf::mean_field_rmse(scenario.members,
                                                  scenario.truth),
                            4),
                 Table::num(enkf::mean_field_rmse(analysis, scenario.truth),
                            4)});
  table.add_row({"mean member RMSE vs truth",
                 Table::num(enkf::ensemble_rmse(scenario.members,
                                                scenario.truth),
                            4),
                 Table::num(enkf::ensemble_rmse(analysis, scenario.truth),
                            4)});
  table.add_row({"ensemble spread",
                 Table::num(enkf::ensemble_spread(scenario.members), 4),
                 Table::num(enkf::ensemble_spread(analysis), 4)});
  table.print(std::cout, "S-EnKF quickstart (" + std::to_string(nx) + "x" +
                             std::to_string(ny) + ", " +
                             std::to_string(members) + " members, " +
                             std::to_string(observations.size()) +
                             " observations)");
  std::cout << "Block messages moved through helper threads: "
            << stats.messages << "\n";
  std::cout << "Disk segments touched (bar reads): "
            << store.segments_touched() << "\n";
  return 0;
}
